// E24 (replication lag vs write latency): the cost and the payoff of the
// sync-ship gate, measured through the full cluster stack. A durable
// primary and a WAL-shipping replica run as two in-process servers joined
// by a real TCP shipper; closed-loop writer connections hammer the primary
// while the replica's lag estimator (the same one kvtop reads off /stats)
// accounts how far behind it runs, in LSNs and in seconds.
//
// Two rounds on fresh nodes each:
//
//	async  the primary acknowledges at local WAL commit; the replica tails
//	       the ship stream at its own pace. Writes are cheap, lag is
//	       whatever the pull loop leaves unapplied.
//	sync   the primary's ack gate holds every write until the replica has
//	       pulled and applied it. Each acknowledged write has provably
//	       reached the replica (acked LSN == committed LSN), and the gate's
//	       wall-wait histogram prices that guarantee per operation.
//
// The experiment's claim is the trade-off direction, not absolute numbers:
// the sync round must show gate waits and a higher write latency than the
// async round, and in exchange must finish with nothing acknowledged left
// unreplicated.

package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"iomodels/internal/btree"
	"iomodels/internal/cluster"
	"iomodels/internal/engine"
	"iomodels/internal/server"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
	"iomodels/internal/workload"
)

// ShipLagConfig parameterizes E24.
type ShipLagConfig struct {
	Writers         int // concurrent closed-loop writer connections
	WritesPerWriter int
	IOTime          sim.Time      // per-IO device latency on both nodes
	CacheBytes      int64         // engine budget per node
	PullInterval    time.Duration // shipper poll delay while caught up
	CatchUp         time.Duration // max wait for the replica to drain after load
	Spec            workload.KeySpec
	Seed            uint64
}

// DefaultShipLagConfig is laptop-scale: enough writers that commits overlap
// pulls (so the async round accrues visible lag) and enough writes that the
// lag estimator sees a real sample stream.
func DefaultShipLagConfig() ShipLagConfig {
	return ShipLagConfig{
		Writers:         8,
		WritesPerWriter: 150,
		IOTime:          50 * sim.Microsecond,
		CacheBytes:      1 << 20,
		PullInterval:    2 * time.Millisecond,
		CatchUp:         10 * time.Second,
		Spec:            workload.DefaultSpec(),
		Seed:            24,
	}
}

// ShipLagRow is one round's measurement. The latency percentiles are the
// writers' wall-clock put latency on the primary; GateWaits/GateP99Us are
// the primary's sync-ship ack-gate histogram (zero in the async round); the
// Lag* fields are the replica's lag-estimator snapshot after the run.
type ShipLagRow struct {
	Mode       string // "async" or "sync"
	Writers    int
	Writes     int64
	P50Us      float64
	P99Us      float64
	GateWaits  int64
	GateP99Us  float64
	LagSamples int64
	LagMaxMs   float64 // peak per-pull staleness of applied records
	LagMaxLSNs int64   // peak committed-but-unapplied backlog seen by a pull
	AckedLSN   int64   // primary: highest replica-acknowledged LSN at the end
	FinalLSN   int64   // primary: committed LSN at the end
}

// shipFlatDev is a stateless fixed-latency timing device: E24 measures the
// replication protocol, not device geometry, so every IO costs the same.
type shipFlatDev struct {
	capacity int64
	ioTime   sim.Time
}

func (d shipFlatDev) Access(now sim.Time, _ storage.Op, _, _ int64) sim.Time {
	return now + d.ioTime
}
func (d shipFlatDev) Capacity() int64 { return d.capacity }
func (d shipFlatDev) Name() string    { return "flat" }

// shipNode is one cluster node: engine, tree server, and (replica) shipper.
type shipNode struct {
	eng     *engine.Engine
	srv     *server.Server
	addr    string
	shipper *cluster.Shipper
}

func (n *shipNode) close() {
	if n.shipper != nil {
		n.shipper.Stop()
	}
	n.srv.Close()
}

// startShipNode boots a durable, shipping-enabled B-tree server in the given
// role. A replica gets its shipper started against primaryAddr.
func startShipNode(cfg ShipLagConfig, role server.Role, syncShip bool, primaryAddr string) (*shipNode, error) {
	eng := engine.FromStore(engine.Config{CacheBytes: cfg.CacheBytes},
		storage.NewFaultStore(shipFlatDev{capacity: 256 << 20, ioTime: cfg.IOTime}), sim.New())
	if err := eng.EnableDurability(engine.DurabilityConfig{
		LogBytes:     8 << 20,
		GroupBytes:   1 << 20,
		JournalBytes: 4 << 20,
	}); err != nil {
		return nil, err
	}
	if err := eng.EnableShipping(0); err != nil {
		return nil, err
	}
	bt, err := btree.New(btree.Config{
		NodeBytes:     4 << 10,
		MaxKeyBytes:   cfg.Spec.KeyBytes,
		MaxValueBytes: cfg.Spec.ValueBytes,
	}, eng)
	if err != nil {
		return nil, err
	}
	d, err := eng.Durable("bt", bt)
	if err != nil {
		return nil, err
	}
	clock := engine.NewSharedClock()
	eng.AdoptSharedClock(clock)

	n := &shipNode{eng: eng}
	srv, err := server.New(server.Config{
		Addr:            "127.0.0.1:0",
		Shards:          1,
		Role:            role,
		SyncShip:        syncShip,
		SyncShipTimeout: 5 * time.Second,
		OnPromote: func() (uint64, error) {
			if n.shipper == nil {
				return 0, errors.New("no shipper")
			}
			return n.shipper.Promote(n.eng)
		},
	}, server.Backend{
		Eng:   eng,
		Clock: clock,
		NewSession: func(c *engine.Client) engine.Dictionary {
			return bt.Session(c)
		},
		Writer: d,
	})
	if err != nil {
		return nil, err
	}
	addr, err := srv.ListenAndServe()
	if err != nil {
		return nil, err
	}
	n.srv, n.addr = srv, addr.String()
	if role == server.RoleReplica {
		n.shipper = cluster.NewShipper(srv, cluster.ShipperConfig{
			Primary:  primaryAddr,
			Opts:     server.Options{RequestTimeout: time.Second, ConnectTimeout: time.Second},
			Interval: cfg.PullInterval,
		})
		n.shipper.Start()
	}
	return n, nil
}

// ShipLag runs E24: the async round first, then the sync round.
func ShipLag(cfg ShipLagConfig) ([]ShipLagRow, error) {
	var rows []ShipLagRow
	for _, mode := range []struct {
		name string
		sync bool
	}{{"async", false}, {"sync", true}} {
		row, err := shipLagRound(cfg, mode.name, mode.sync)
		if err != nil {
			return nil, fmt.Errorf("E24 %s: %w", mode.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// shipLagRound boots a fresh primary+replica pair, runs the closed-loop
// write load, waits for the replica to drain, and snapshots both sides.
func shipLagRound(cfg ShipLagConfig, mode string, syncShip bool) (ShipLagRow, error) {
	primary, err := startShipNode(cfg, server.RolePrimary, syncShip, "")
	if err != nil {
		return ShipLagRow{}, err
	}
	defer primary.close()
	replica, err := startShipNode(cfg, server.RoleReplica, false, primary.addr)
	if err != nil {
		return ShipLagRow{}, err
	}
	defer replica.close()

	hist := stats.NewLatencyHist()
	root := stats.NewRNG(cfg.Seed)
	errs := make(chan error, cfg.Writers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		rng := root.Split(uint64(w))
		go func(w int) {
			defer wg.Done()
			cl, err := server.Dial(primary.addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			local := stats.NewLatencyHist()
			for i := 0; i < cfg.WritesPerWriter; i++ {
				// Disjoint key ranges per writer, shuffled within the range so
				// tree paths differ between consecutive puts.
				id := uint64(w*cfg.WritesPerWriter) + uint64(rng.Int63n(int64(cfg.WritesPerWriter)))
				t0 := time.Now()
				if err := cl.Put(cfg.Spec.Key(id), cfg.Spec.Value(id)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				local.Observe(int64(time.Since(t0)))
			}
			hist.Merge(local)
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return ShipLagRow{}, err
		}
	}

	// Drain: the async round can finish the load with records still in
	// flight; the row's Acked/Final comparison is only meaningful once the
	// replica has caught up (or demonstrably cannot).
	committed := primary.eng.ShipStats().CommittedLSN
	deadline := time.Now().Add(cfg.CatchUp)
	for replica.srv.ShipAppliedLSN() < committed {
		if err := replica.shipper.Err(); err != nil {
			return ShipLagRow{}, err
		}
		if time.Now().After(deadline) {
			return ShipLagRow{}, fmt.Errorf("replica stuck at LSN %d of %d",
				replica.srv.ShipAppliedLSN(), committed)
		}
		time.Sleep(time.Millisecond)
	}

	psnap := primary.srv.Snapshot()
	rsnap := replica.srv.Snapshot()
	snap := hist.Snapshot()
	return ShipLagRow{
		Mode:       mode,
		Writers:    cfg.Writers,
		Writes:     int64(cfg.Writers * cfg.WritesPerWriter),
		P50Us:      float64(snap.P50) / 1e3,
		P99Us:      float64(snap.P99) / 1e3,
		GateWaits:  psnap.GateWait.Count,
		GateP99Us:  psnap.GateWait.P99Us,
		LagSamples: rsnap.ShipLag.Samples,
		LagMaxMs:   rsnap.ShipLag.MaxSeconds * 1e3,
		LagMaxLSNs: rsnap.ShipLag.MaxLSNs,
		AckedLSN:   psnap.ShipAckedLSN,
		FinalLSN:   int64(committed),
	}, nil
}

// RenderShipLag formats E24, one row per round.
func RenderShipLag(rows []ShipLagRow) string {
	headers := []string{"mode", "writers", "writes", "p50 µs", "p99 µs",
		"gate waits", "gate p99 µs", "lag samples", "lag max ms", "lag max lsns"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mode, intStr(r.Writers), intStr(int(r.Writes)),
			fmt0(r.P50Us), fmt0(r.P99Us),
			intStr(int(r.GateWaits)), fmt0(r.GateP99Us),
			intStr(int(r.LagSamples)), f3(r.LagMaxMs), intStr(int(r.LagMaxLSNs)),
		})
	}
	return RenderTable("E24 (ship lag): sync-ship write-latency cost vs replication-lag guarantee",
		headers, cells)
}
