// E5 (Figure 2), E6 (Figure 3), E10 (Corollary 7 check) and E11 (Theorem 9
// ablation): node-size sweeps of the disk-backed B-tree (BerkeleyDB
// stand-in) and Bε-tree (TokuDB stand-in) on a simulated HDD.
//
// Methodology follows §7: load a key-value population, then measure the
// average virtual time of random point queries and random inserts at each
// node size, overlaying the affine model's prediction. Sizes are scaled
// from the paper's 16 GB / 4 GiB-RAM setup, keeping the data:cache ratio
// (all knobs are exposed in NodeSizeConfig).

package experiments

import (
	"fmt"

	"iomodels/internal/betree"
	"iomodels/internal/btree"
	"iomodels/internal/core"
	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/ssd"
	"iomodels/internal/storage"
	"iomodels/internal/workload"
)

// NodeSizeConfig parameterizes the Figure 2/3 sweeps.
type NodeSizeConfig struct {
	Items      int64
	CacheBytes int64
	QueryOps   int
	InsertOps  int
	ScanOps    int // range queries measured per node size
	ScanLen    int // items returned per range query
	NodeSizes  []int
	Fanout     int // Bε-tree only
	Profile    hdd.Profile
	// SSD, when non-nil, runs the sweep on this solid-state profile instead
	// of the hard drive (the E15 device-family comparison).
	SSD       *ssd.Profile
	Spec      workload.KeySpec
	Seed      uint64
	Optimized bool // Bε-tree only: Theorem 9 organization
}

// DefaultFigure2Config is the BerkeleyDB-style sweep (4 KiB – 1 MiB nodes).
func DefaultFigure2Config() NodeSizeConfig {
	return NodeSizeConfig{
		Items:      300_000,
		CacheBytes: 8 << 20,
		QueryOps:   300,
		InsertOps:  2000,
		ScanOps:    30,
		ScanLen:    1000,
		NodeSizes:  []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20},
		Profile:    hdd.DefaultProfile(),
		Spec:       workload.DefaultSpec(),
		Seed:       3,
	}
}

// DefaultFigure3Config is the TokuDB-style sweep (64 KiB – 4 MiB nodes).
func DefaultFigure3Config() NodeSizeConfig {
	return NodeSizeConfig{
		Items:      600_000,
		CacheBytes: 16 << 20,
		QueryOps:   300,
		InsertOps:  30_000,
		ScanOps:    30,
		ScanLen:    1000,
		NodeSizes:  []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20},
		Fanout:     betree.DefaultFanout,
		Profile:    hdd.DefaultProfile(),
		Spec:       workload.DefaultSpec(),
		Seed:       4,
		Optimized:  true,
	}
}

// NodeSizePoint is one measurement of the sweep, with the affine model's
// prediction alongside (the fitted curves of Figures 2 and 3).
type NodeSizePoint struct {
	NodeBytes     int
	QueryMs       float64
	InsertMs      float64
	ScanUsItem    float64 // microseconds per item returned by range queries
	ModelQueryMs  float64
	ModelInsertMs float64
	ModelScanUsIt float64
	Pager         engine.PagerStats // buffer-pool traffic over the measured phases
}

// NodeSizeResult is a full sweep.
type NodeSizeResult struct {
	Tree   string
	Device string
	Points []NodeSizePoint
}

// affineOf returns the affine model the profile realizes.
func affineOf(p hdd.Profile) core.Affine {
	return core.Affine{Setup: p.ExpectedSetup().Seconds(), PerByte: 1 / p.Bandwidth}
}

// makeDevice builds the sweep's storage device.
func (cfg NodeSizeConfig) makeDevice() storage.Device {
	if cfg.SSD != nil {
		return ssd.New(*cfg.SSD)
	}
	return hdd.New(cfg.Profile, cfg.Seed)
}

// affine returns the affine approximation of the configured device: for an
// SSD, the setup cost is one piece's service time and the marginal byte
// moves at the (striped) saturation bandwidth.
func (cfg NodeSizeConfig) affine() core.Affine {
	if cfg.SSD != nil {
		p := *cfg.SSD
		return core.Affine{
			Setup:   (p.PieceTime(p.StripeBytes) + sim.FromSeconds(float64(p.StripeBytes)/p.ChanBandwidth)).Seconds(),
			PerByte: 1 / p.SaturationBandwidth(p.StripeBytes),
		}
	}
	return affineOf(cfg.Profile)
}

// DeviceName names the configured device.
func (cfg NodeSizeConfig) DeviceName() string {
	if cfg.SSD != nil {
		return cfg.SSD.Name
	}
	return cfg.Profile.Name
}

func (cfg NodeSizeConfig) entryBytes() float64 {
	return float64(cfg.Spec.KeyBytes + cfg.Spec.ValueBytes + 8)
}

// Figure2 sweeps the B-tree.
func Figure2(cfg NodeSizeConfig) NodeSizeResult {
	res := NodeSizeResult{Tree: "B-tree", Device: cfg.DeviceName()}
	a := cfg.affine()
	for _, nb := range cfg.NodeSizes {
		clk := sim.New()
		eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, cfg.makeDevice(), clk)
		tree, err := btree.New(btree.Config{
			NodeBytes:     nb,
			MaxKeyBytes:   cfg.Spec.KeyBytes,
			MaxValueBytes: cfg.Spec.ValueBytes,
		}, eng)
		if err != nil {
			panic(fmt.Sprintf("experiments: figure2 config: %v", err))
		}
		workload.Load(tree, cfg.Spec, cfg.Items)
		tree.Flush()
		eng.Pager().ResetStats()

		queryMs := measurePhase(clk, cfg.QueryOps, func(i int) {
			id := uint64(int64(i*2654435761) % cfg.Items)
			tree.Get(cfg.Spec.Key(id))
		}, nil)
		insertMs := measurePhase(clk, cfg.InsertOps, func(i int) {
			id := uint64(cfg.Items + int64(i))
			tree.Put(cfg.Spec.Key(id), cfg.Spec.Value(id))
		}, tree.Flush)
		scanUs := measureScans(clk, cfg, func(lo []byte, n int) {
			count := 0
			tree.Scan(lo, nil, func(k, v []byte) bool {
				count++
				return count < n
			})
		})

		p := core.BTreeParams{
			NodeBytes:  float64(nb),
			EntryBytes: cfg.entryBytes(),
			Items:      float64(cfg.Items),
			CacheBytes: float64(cfg.CacheBytes),
		}
		res.Points = append(res.Points, NodeSizePoint{
			NodeBytes:     nb,
			QueryMs:       queryMs,
			InsertMs:      insertMs,
			ScanUsItem:    scanUs,
			ModelQueryMs:  core.BTreePointCost(a, p) * 1000,
			ModelInsertMs: core.BTreePointCost(a, p) * 1000,
			ModelScanUsIt: core.BTreeRangeCost(a, p, float64(cfg.ScanLen)) / float64(maxInt(cfg.ScanLen, 1)) * 1e6,
			Pager:         eng.Pager().Stats(),
		})
	}
	return res
}

// Figure3 sweeps the Bε-tree.
func Figure3(cfg NodeSizeConfig) NodeSizeResult {
	name := "Bε-tree"
	if !cfg.Optimized {
		name = "Bε-tree (naive)"
	}
	res := NodeSizeResult{Tree: name, Device: cfg.DeviceName()}
	a := cfg.affine()
	for _, nb := range cfg.NodeSizes {
		bcfg := betree.Config{
			NodeBytes:     nb,
			MaxFanout:     cfg.Fanout,
			MaxKeyBytes:   cfg.Spec.KeyBytes,
			MaxValueBytes: cfg.Spec.ValueBytes,
		}
		if cfg.Optimized {
			bcfg = bcfg.Optimized()
		}
		clk := sim.New()
		eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, cfg.makeDevice(), clk)
		tree, err := betree.New(bcfg, eng)
		if err != nil {
			panic(fmt.Sprintf("experiments: figure3 config at %d: %v", nb, err))
		}
		workload.Load(tree, cfg.Spec, cfg.Items)
		tree.Flush()
		eng.Pager().ResetStats()

		queryMs := measurePhase(clk, cfg.QueryOps, func(i int) {
			id := uint64(int64(i*2654435761) % cfg.Items)
			tree.Get(cfg.Spec.Key(id))
		}, nil)
		insertMs := measurePhase(clk, cfg.InsertOps, func(i int) {
			id := uint64(cfg.Items + int64(i))
			tree.Put(cfg.Spec.Key(id), cfg.Spec.Value(id))
		}, tree.Flush)
		scanUs := measureScans(clk, cfg, func(lo []byte, n int) {
			count := 0
			tree.Scan(lo, nil, func(k, v []byte) bool {
				count++
				return count < n
			})
		})

		p := core.BeTreeParams{
			NodeBytes:  float64(nb),
			EntryBytes: cfg.entryBytes(),
			PivotBytes: float64(cfg.Spec.KeyBytes + 12),
			Fanout:     float64(cfg.Fanout),
			Items:      float64(cfg.Items),
			CacheBytes: float64(cfg.CacheBytes),
			Optimized:  cfg.Optimized,
		}
		res.Points = append(res.Points, NodeSizePoint{
			NodeBytes:     nb,
			QueryMs:       queryMs,
			InsertMs:      insertMs,
			ScanUsItem:    scanUs,
			ModelQueryMs:  core.BeTreePointCost(a, p) * 1000,
			ModelInsertMs: core.BeTreeInsertCost(a, p) * 1000,
			ModelScanUsIt: core.BeTreeRangeCost(a, p, float64(cfg.ScanLen)) / float64(maxInt(cfg.ScanLen, 1)) * 1e6,
			Pager:         eng.Pager().Stats(),
		})
	}
	return res
}

// measureScans runs cfg.ScanOps range queries of cfg.ScanLen items and
// returns virtual microseconds per item returned (0 if scans disabled).
func measureScans(clk *sim.Engine, cfg NodeSizeConfig, scan func(lo []byte, n int)) float64 {
	if cfg.ScanOps <= 0 || cfg.ScanLen <= 0 {
		return 0
	}
	start := clk.Now()
	for i := 0; i < cfg.ScanOps; i++ {
		id := uint64(int64(i*7919) % cfg.Items)
		scan(cfg.Spec.Key(id), cfg.ScanLen)
	}
	total := float64(cfg.ScanOps * cfg.ScanLen)
	return (clk.Now() - start).Milliseconds() * 1000 / total
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// measurePhase runs ops and returns virtual milliseconds per op, including
// any closing cost (e.g. the write-back the ops deferred).
func measurePhase(clk *sim.Engine, ops int, run func(i int), closing func()) float64 {
	start := clk.Now()
	for i := 0; i < ops; i++ {
		run(i)
	}
	if closing != nil {
		closing()
	}
	return (clk.Now() - start).Milliseconds() / float64(ops)
}

// RenderNodeSize formats a Figure 2/3 sweep.
func RenderNodeSize(res NodeSizeResult, title string) string {
	var cells [][]string
	for _, p := range res.Points {
		cells = append(cells, []string{
			humanBytes(p.NodeBytes),
			f3(p.QueryMs), f3(p.ModelQueryMs),
			f3(p.InsertMs), f3(p.ModelInsertMs),
			f2(p.ScanUsItem), f2(p.ModelScanUsIt),
			f2(p.Pager.HitRatio() * 100),
		})
	}
	return RenderTable(title,
		[]string{"Node size", "query ms/op", "model", "insert ms/op", "model", "scan µs/item", "model", "hit%"}, cells)
}

// RenderNodeSizeCSV emits the sweep as CSV.
func RenderNodeSizeCSV(res NodeSizeResult) string {
	headers := []string{"node_bytes", "query_ms", "model_query_ms", "insert_ms", "model_insert_ms", "scan_us_item", "model_scan_us_item"}
	var cells [][]string
	for _, p := range res.Points {
		cells = append(cells, []string{
			intStr(p.NodeBytes), f4(p.QueryMs), f4(p.ModelQueryMs), f4(p.InsertMs), f4(p.ModelInsertMs),
			f4(p.ScanUsItem), f4(p.ModelScanUsIt),
		})
	}
	return RenderCSV(headers, cells)
}

// OptimaRow is E10: where the measured B-tree optimum falls versus the
// model's Corollary 7 optimum and the half-bandwidth point.
type OptimaRow struct {
	MeasuredBestQuery  int
	MeasuredBestInsert int
	ModelOptimal       float64
	HalfBandwidth      float64
}

// Corollary7Check extracts E10 from a Figure 2 sweep.
func Corollary7Check(res NodeSizeResult, cfg NodeSizeConfig) OptimaRow {
	best := func(get func(NodeSizePoint) float64) int {
		bi, bv := 0, get(res.Points[0])
		for i, p := range res.Points {
			if v := get(p); v < bv {
				bi, bv = i, v
			}
		}
		return res.Points[bi].NodeBytes
	}
	a := cfg.affine()
	return OptimaRow{
		MeasuredBestQuery:  best(func(p NodeSizePoint) float64 { return p.QueryMs }),
		MeasuredBestInsert: best(func(p NodeSizePoint) float64 { return p.InsertMs }),
		ModelOptimal:       core.OptimalBTreeNodeBytes(a, cfg.entryBytes()),
		HalfBandwidth:      a.HalfBandwidthBytes(),
	}
}

// RenderOptima formats E10.
func RenderOptima(r OptimaRow) string {
	cells := [][]string{{
		humanBytes(r.MeasuredBestQuery),
		humanBytes(r.MeasuredBestInsert),
		humanBytes(int(r.ModelOptimal)),
		humanBytes(int(r.HalfBandwidth)),
	}}
	return RenderTable("E10 (Corollary 7): optimal B-tree node size sits below the half-bandwidth point",
		[]string{"best query node", "best insert node", "model optimum", "half-bandwidth"}, cells)
}

// AblationRow is E11: one Bε-tree node organization at a fixed geometry.
type AblationRow struct {
	Mode     string
	QueryMs  float64
	InsertMs float64
}

// Theorem9Ablation measures the three query organizations at one node size:
// whole-node reads (Lemma 8 baseline), segmented buffers (meta+slot reads),
// and the full Theorem 9 design (pivots-in-parent, slot-only reads).
func Theorem9Ablation(cfg NodeSizeConfig, nodeBytes int) []AblationRow {
	type variant struct {
		name   string
		layout betree.Layout
		qm     betree.QueryMode
	}
	variants := []variant{
		{"whole-node (Lemma 8)", betree.Packed, betree.WholeNode},
		{"segmented buffers (meta+slot)", betree.Slotted, betree.MetaPlusSlot},
		{"pivots-in-parent (Theorem 9)", betree.Slotted, betree.SlotOnly},
	}
	var rows []AblationRow
	for _, v := range variants {
		clk := sim.New()
		eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, hdd.New(cfg.Profile, cfg.Seed), clk)
		tree, err := betree.New(betree.Config{
			NodeBytes:     nodeBytes,
			MaxFanout:     cfg.Fanout,
			MaxKeyBytes:   cfg.Spec.KeyBytes,
			MaxValueBytes: cfg.Spec.ValueBytes,
			Layout:        v.layout,
			QueryMode:     v.qm,
		}, eng)
		if err != nil {
			panic(fmt.Sprintf("experiments: ablation: %v", err))
		}
		workload.Load(tree, cfg.Spec, cfg.Items)
		tree.Flush()
		queryMs := measurePhase(clk, cfg.QueryOps, func(i int) {
			id := uint64(int64(i*2654435761) % cfg.Items)
			tree.Get(cfg.Spec.Key(id))
		}, nil)
		insertMs := measurePhase(clk, cfg.InsertOps, func(i int) {
			id := uint64(cfg.Items + int64(i))
			tree.Put(cfg.Spec.Key(id), cfg.Spec.Value(id))
		}, tree.Flush)
		rows = append(rows, AblationRow{Mode: v.name, QueryMs: queryMs, InsertMs: insertMs})
	}
	return rows
}

// RenderAblation formats E11.
func RenderAblation(rows []AblationRow, nodeBytes int) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Mode, f3(r.QueryMs), f3(r.InsertMs)})
	}
	return RenderTable(
		fmt.Sprintf("E11 (Theorem 9 ablation) at B=%s: each optimization cuts query cost, inserts unchanged", humanBytes(nodeBytes)),
		[]string{"Organization", "query ms/op", "insert ms/op"}, cells)
}
