// E23 (multi-queue serving): the Lemma 13 / E20 methodology re-run under
// the multi-queue device model (internal/mqssd), scoring the refinement the
// way E21 scored the PDAM against the DAM.
//
// Three phases:
//
//  1. Calibration sweep over queue count and depth: p = Queues·PerQueueP
//     sim threads of dependent block reads against each geometry, measured
//     against the MQ, PDAM, and DAM closed forms. The PDAM reading of the
//     geometry (raw slot count) overpredicts service by exactly the
//     depth/interference factor; the MQ closed form tracks the measurement.
//
//  2. Serving residuals: a kvserve B-tree on the multi-queue profile with
//     the span tracer and the four-model accountant (obs.ExactMQ), driven
//     by closed-loop TCP clients through a PDAM-sized global read batch —
//     the scheduler a PDAM believer would build, which overcommits the
//     device. The live read-residual histograms must order
//     mq < pdam < dam (acceptance: mq beats pdam, both beat dam ≥ 2×).
//
//  3. Scheduler comparison + write isolation: gets/step under the DAM
//     (batch 1), PDAM-global (one raw-P batch), and queue-aware (per-queue
//     lanes via mqssd.QueueHint) schedulers; then reads against concurrent
//     group-committing writers with and without the dedicated write queue.

package experiments

import (
	"math"
	"time"

	"iomodels/internal/btree"
	"iomodels/internal/core"
	"iomodels/internal/engine"
	"iomodels/internal/mqssd"
	"iomodels/internal/obs"
	"iomodels/internal/server"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
	"iomodels/internal/workload"
)

// MQServingConfig parameterizes E23.
type MQServingConfig struct {
	Items      int64
	Device     mqssd.Config // the serving device profile
	NodeBlocks int          // B-tree node size in device blocks
	CacheBytes int64        // engine budget (keep << data so gets hit disk)

	OpsPerClient int
	Clients      []int         // k values for the scheduler comparison
	BatchGrace   time.Duration // real-time wait for partial batches

	SweepQueues []int // calibration sweep: queue counts
	SweepDepths []int // calibration sweep: per-queue depths
	SweepIOs    int   // dependent reads per thread in the sweep

	Writers         int // concurrent writer connections (isolation phase)
	WritesPerWriter int

	Spec workload.KeySpec
	Seed uint64
}

// DefaultMQServingConfig is laptop-scale but IO-bound. The device profile
// sharpens the default geometry to an 8× PDAM overcommit (4 queues × 16
// raw slots = raw P 64, but depth 4 and interference cap the effective
// parallelism at 8): the wider the gap between the raw and realizable slot
// count, the starker the single-scalar models' misprediction.
func DefaultMQServingConfig() MQServingConfig {
	device := mqssd.DefaultConfig()
	device.PerQueueP = 16
	return MQServingConfig{
		Items:           60_000,
		Device:          device,
		NodeBlocks:      1,
		CacheBytes:      512 << 10,
		OpsPerClient:    60,
		Clients:         []int{1, 8, 32},
		BatchGrace:      time.Millisecond,
		SweepQueues:     []int{1, 2, 4, 8},
		SweepDepths:     []int{2, 4, 8},
		SweepIOs:        128,
		Writers:         8,
		WritesPerWriter: 40,
		Spec:            workload.DefaultSpec(),
		Seed:            23,
	}
}

// legacy synthesizes the E20 config the shared read-round helper consumes.
func (cfg MQServingConfig) legacy() ServingConfig {
	return ServingConfig{
		Items:        cfg.Items,
		StepTime:     cfg.Device.StepTime,
		OpsPerClient: cfg.OpsPerClient,
		Spec:         cfg.Spec,
		Seed:         cfg.Seed,
	}
}

// MQCalibRow is one (queue count, depth) point of the calibration sweep:
// the measured completion time of raw-P threads of dependent reads, and
// each model's relative prediction error on it.
type MQCalibRow struct {
	Queues, Depth int
	RawP, EffP    int     // PDAM reading vs realizable parallelism
	MeasuredSteps float64 // slowest thread's completion, in device steps
	MQErr         float64 // |predicted−measured|/measured
	PDAMErr       float64
	DAMErr        float64
}

// MQCalibration runs the sweep. Each geometry is probed at its own raw slot
// count — the offered load a PDAM-informed client would choose.
func MQCalibration(cfg MQServingConfig) []MQCalibRow {
	var rows []MQCalibRow
	for _, q := range cfg.SweepQueues {
		for _, depth := range cfg.SweepDepths {
			dcfg := cfg.Device
			dcfg.Queues = q
			dcfg.QueueDepth = depth
			dcfg.WriteQueue = false
			model := dcfg.Model()
			raw := model.RawP()
			meas := mqThreadRound(dcfg, raw, cfg.SweepIOs, cfg.Seed)
			ios := float64(cfg.SweepIOs)
			// The PDAM reading of the geometry: raw slot count, no depth
			// or interference vocabulary.
			pd := core.PDAM{P: raw, BlockBytes: model.BlockBytes, StepSeconds: model.StepSeconds}
			rows = append(rows, MQCalibRow{
				Queues: q, Depth: depth,
				RawP: raw, EffP: model.EffectiveParallelism(),
				MeasuredSteps: meas / model.StepSeconds,
				MQErr:         relErr(model.MQReadSeconds(raw, ios), meas),
				PDAMErr:       relErr(pd.PDAMReadSeconds(raw, ios), meas),
				DAMErr:        relErr(pd.DAMReadSeconds(raw, ios), meas),
			})
		}
	}
	return rows
}

func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	return math.Abs(pred-meas) / meas
}

// mqThreadRound is one Figure 1 point on a fresh multi-queue device: p sim
// processes each issuing ios dependent random block reads; returns the
// completion time of the slowest in seconds.
func mqThreadRound(dcfg mqssd.Config, p, ios int, seed uint64) float64 {
	eng := sim.New()
	dev := mqssd.New(dcfg)
	st := storage.NewStore(dev.Storage(1 << 31))
	block := dev.Config().BlockBytes
	span := int64(1<<31) / block
	root := stats.NewRNG(seed + uint64(p)*1000003)
	var last sim.Time
	for i := 0; i < p; i++ {
		rng := root.Split(uint64(i))
		eng.Go(func(pr *sim.Proc) {
			for j := 0; j < ios; j++ {
				off := rng.Int63n(span) * block
				done := st.Meter(pr.Now(), storage.Read, off, block)
				pr.SleepUntil(done)
			}
			if pr.Now() > last {
				last = pr.Now()
			}
		})
	}
	eng.Run()
	return last.Seconds()
}

// startMQServing boots a B-tree server on a fresh multi-queue device.
// lanes/batch 0 selects the queue-aware defaults (mqssd.QueueHint); lanes 1
// with an explicit batch forces the classic global scheduler.
func startMQServing(cfg MQServingConfig, dcfg mqssd.Config, lanes, batch int, durable bool, tracer *obs.Tracer) (*servingBackend, error) {
	dev := mqssd.New(dcfg).Storage(1 << 31)
	eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, dev, sim.New())
	if durable {
		if err := eng.EnableDurability(engine.DurabilityConfig{
			LogBytes:     16 << 20,
			GroupBytes:   1 << 20,
			JournalBytes: 8 << 20,
		}); err != nil {
			return nil, err
		}
	}
	tree, err := btree.New(btree.Config{
		NodeBytes:     cfg.NodeBlocks * int(dcfg.BlockBytes),
		MaxKeyBytes:   cfg.Spec.KeyBytes,
		MaxValueBytes: cfg.Spec.ValueBytes,
	}, eng)
	if err != nil {
		return nil, err
	}
	var writer engine.Dictionary = tree
	if durable {
		d, err := eng.Durable("bt", tree)
		if err != nil {
			return nil, err
		}
		writer = d
	}
	workload.Load(writer, cfg.Spec, cfg.Items)
	tree.Flush()
	if durable {
		if err := eng.Sync(); err != nil {
			return nil, err
		}
	}
	maxK := cfg.Writers + len(cfg.Clients)
	for _, k := range cfg.Clients {
		if k > maxK {
			maxK = k
		}
	}
	clock := engine.NewSharedClock()
	eng.AdoptSharedClock(clock)
	srv, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		ReadLanes:  lanes,
		BatchIOs:   batch,
		BatchGrace: cfg.BatchGrace,
		ReadQueue:  4 * maxK,
		Tracer:     tracer,
	}, server.Backend{
		Eng:   eng,
		Clock: clock,
		NewSession: func(c *engine.Client) engine.Dictionary {
			return tree.Session(c)
		},
		Writer: writer,
	})
	if err != nil {
		return nil, err
	}
	addr, err := srv.ListenAndServe()
	if err != nil {
		return nil, err
	}
	return &servingBackend{srv: srv, addr: addr.String(), clock: clock, eng: eng}, nil
}

// MQServing runs the scheduler comparison: closed-loop TCP gets per device
// step under the DAM, PDAM-global, and queue-aware schedulers.
func MQServing(cfg MQServingConfig) ([]ServingRow, error) {
	raw := cfg.Device.Model().RawP()
	var rows []ServingRow
	for _, mode := range []struct {
		name         string
		lanes, batch int
	}{
		{"dam", 1, 1},      // one IO at a time: the DAM's implicit discipline
		{"pdam", 1, raw},   // one global batch of the raw slot count
		{"mq-lanes", 0, 0}, // per-queue lanes sized by QueueHint
	} {
		sb, err := startMQServing(cfg, cfg.Device, mode.lanes, mode.batch, false, nil)
		if err != nil {
			return nil, err
		}
		for _, k := range cfg.Clients {
			row, err := servingReadRound(sb, cfg.legacy(), mode.name, k)
			if err != nil {
				sb.srv.Close()
				return nil, err
			}
			rows = append(rows, row)
		}
		sb.srv.Close()
	}
	return rows, nil
}

// MQResiduals runs the accountant phase: the PDAM-global scheduler (the
// overcommitting design a PDAM believer would run on this device) under the
// maximum client count, every span traced, four models predicting each op.
// Returns the tracer summary whose read-residual table E23 asserts on.
func MQResiduals(cfg MQServingConfig) (obs.Summary, error) {
	raw := cfg.Device.Model().RawP()
	// ExactMQ reads exact device parameters (no fitting), so a twin of the
	// serving device calibrates the four models up front.
	models := obs.ExactMQ(mqssd.New(cfg.Device).Storage(1 << 31))
	tracer := obs.NewTracer(obs.Config{SampleEvery: 1, Models: &models})
	sb, err := startMQServing(cfg, cfg.Device, 1, raw, false, tracer)
	if err != nil {
		return obs.Summary{}, err
	}
	defer sb.srv.Close()
	// Twice the batch size in closed-loop clients, so a full batch is always
	// queued behind the running one and every launch is raw-P wide.
	k := 2 * raw
	if _, err := servingReadRound(sb, cfg.legacy(), "residuals", k); err != nil {
		return obs.Summary{}, err
	}
	return tracer.Summary(), nil
}

// MQIsolationRow is one write-isolation measurement: dependent-read
// throughput while a sequential write stream (a WAL tail) hammers the
// device, with or without the dedicated write queue.
type MQIsolationRow struct {
	WriteQueue   bool
	Readers      int
	Steps        float64 // slowest reader's completion, in device steps
	ReadsPerStep float64
	WriteBlocks  int64 // write blocks issued while the readers ran
}

// MQWriteIsolation measures the dedicated write queue at the device level,
// deterministically: EffectiveParallelism reader procs each run SweepIOs
// dependent random block reads while one writer proc streams sequential
// write bursts — the shape of WAL appends, which is exactly the traffic the
// serving path's group commit sends here, since mqssd routes writes by op.
// With the write queue the bursts never occupy read-queue slots; without it
// they land on the read queues and steal read service.
func MQWriteIsolation(cfg MQServingConfig) []MQIsolationRow {
	readers := cfg.Device.Model().EffectiveParallelism()
	var rows []MQIsolationRow
	for _, wq := range []bool{true, false} {
		dcfg := cfg.Device
		dcfg.WriteQueue = wq
		rows = append(rows, mqIsolationRound(dcfg, readers, cfg.SweepIOs, cfg.Seed))
	}
	return rows
}

// mqIsolationRound is one write-isolation point on a fresh device.
func mqIsolationRound(dcfg mqssd.Config, readers, ios int, seed uint64) MQIsolationRow {
	eng := sim.New()
	dev := mqssd.New(dcfg)
	st := storage.NewStore(dev.Storage(1 << 31))
	block := dev.Config().BlockBytes
	span := int64(1<<30) / block
	root := stats.NewRNG(seed + 99991)
	var lastReader sim.Time
	for i := 0; i < readers; i++ {
		rng := root.Split(uint64(i))
		eng.Go(func(pr *sim.Proc) {
			for j := 0; j < ios; j++ {
				off := rng.Int63n(span) * block
				done := st.Meter(pr.Now(), storage.Read, off, block)
				pr.SleepUntil(done)
			}
			if pr.Now() > lastReader {
				lastReader = pr.Now()
			}
		})
	}
	// The write stream: dependent 16-block sequential bursts, with enough
	// volume to outlast the readers. Sequential addresses rotate across the
	// read queues when no write queue isolates them.
	const burstBlocks = 16
	totalBursts := readers * ios / 4
	var writeBlocks int64
	eng.Go(func(pr *sim.Proc) {
		off := int64(1 << 30) // write region above the readers'
		for b := 0; b < totalBursts; b++ {
			if lastReader == 0 || pr.Now() <= lastReader {
				writeBlocks += burstBlocks
			}
			done := st.Meter(pr.Now(), storage.Write, off, burstBlocks*block)
			off += burstBlocks * block
			pr.SleepUntil(done)
		}
	})
	eng.Run()
	steps := float64(lastReader) / float64(dcfg.StepTime)
	row := MQIsolationRow{
		WriteQueue: dcfg.WriteQueue, Readers: readers,
		Steps: steps, WriteBlocks: writeBlocks,
	}
	if steps > 0 {
		row.ReadsPerStep = float64(readers*ios) / steps
	}
	return row
}

// RenderMQCalibration formats the sweep table.
func RenderMQCalibration(rows []MQCalibRow) string {
	headers := []string{"queues", "depth", "raw P", "eff P", "steps", "mq err%", "pdam err%", "dam err%"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			intStr(r.Queues), intStr(r.Depth), intStr(r.RawP), intStr(r.EffP),
			fmt0(r.MeasuredSteps), f2(100 * r.MQErr), f2(100 * r.PDAMErr), f2(100 * r.DAMErr),
		})
	}
	return RenderTable("E23 (calibration): raw-P dependent-read threads per queue geometry — closed-form prediction error",
		headers, cells)
}

// RenderMQServing formats the scheduler comparison.
func RenderMQServing(rows []ServingRow) string {
	headers := []string{"scheduler", "clients k", "steps", "gets/step", "hit%", "p50 µs", "p99 µs"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mode, intStr(r.Clients), fmt0(r.Steps), f3(r.Throughput),
			f2(r.HitRatio * 100), fmt0(r.P50Us), fmt0(r.P99Us),
		})
	}
	return RenderTable("E23 (serving): gets per device step — DAM vs PDAM-global vs queue-aware lanes on the multi-queue device",
		headers, cells)
}

// RenderMQIsolation formats the write-isolation phase.
func RenderMQIsolation(rows []MQIsolationRow) string {
	headers := []string{"write queue", "readers", "steps", "reads/step", "write blocks"}
	var cells [][]string
	for _, r := range rows {
		wq := "off"
		if r.WriteQueue {
			wq = "on"
		}
		cells = append(cells, []string{
			wq, intStr(r.Readers), fmt0(r.Steps), f3(r.ReadsPerStep), intStr(int(r.WriteBlocks)),
		})
	}
	return RenderTable("E23 (write isolation): dependent-read throughput under a sequential write stream — dedicated write queue on/off",
		headers, cells)
}
