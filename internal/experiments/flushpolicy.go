// E14 (design-choice ablation): why the Bε-tree flushes the child with the
// most pending messages.
//
// The paper's flush rule — "typically v is chosen to be the child with the
// most pending messages" — maximizes the bytes moved per node rewrite. This
// experiment ablates it against a round-robin victim under uniform and
// Zipf-skewed insert streams: under skew the fullest-child rule moves big
// batches toward hot subtrees and does markedly fewer flushes (and IOs) per
// insert.

package experiments

import (
	"fmt"

	"iomodels/internal/betree"
	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/workload"
)

// FlushPolicyConfig parameterizes E14.
type FlushPolicyConfig struct {
	Items      int64 // preload
	Ops        int   // measured upsert stream
	KeySpace   int64 // upsert keys drawn from [0, KeySpace)
	Theta      float64
	NodeBytes  int
	Fanout     int
	CacheBytes int64
	Profile    hdd.Profile
	Spec       workload.KeySpec
	Seed       uint64
}

// DefaultFlushPolicyConfig is laptop-scale.
func DefaultFlushPolicyConfig() FlushPolicyConfig {
	return FlushPolicyConfig{
		Items:      150_000,
		Ops:        60_000,
		KeySpace:   150_000,
		Theta:      0.9,
		NodeBytes:  256 << 10,
		Fanout:     betree.DefaultFanout,
		CacheBytes: 2 << 20,
		Profile:    hdd.DefaultProfile(),
		Spec:       workload.DefaultSpec(),
		Seed:       21,
	}
}

// FlushPolicyRow is one (policy, skew) measurement.
type FlushPolicyRow struct {
	Policy   betree.FlushPolicy
	Skewed   bool
	InsertMs float64
	Flushes  float64 // per thousand inserts
}

// FlushPolicyAblation runs E14: both policies under uniform and skewed
// upsert streams.
func FlushPolicyAblation(cfg FlushPolicyConfig) []FlushPolicyRow {
	var rows []FlushPolicyRow
	for _, skewed := range []bool{false, true} {
		for _, policy := range []betree.FlushPolicy{betree.FlushFullest, betree.FlushRoundRobin} {
			clk := sim.New()
			eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, hdd.New(cfg.Profile, cfg.Seed), clk)
			bcfg := betree.Config{
				NodeBytes:     cfg.NodeBytes,
				MaxFanout:     cfg.Fanout,
				MaxKeyBytes:   cfg.Spec.KeyBytes,
				MaxValueBytes: cfg.Spec.ValueBytes,
				FlushPolicy:   policy,
			}.Optimized()
			bcfg.FlushPolicy = policy // Optimized() must not reset it
			tree, err := betree.New(bcfg, eng)
			if err != nil {
				panic(fmt.Sprintf("experiments: flush policy: %v", err))
			}
			workload.Load(tree, cfg.Spec, cfg.Items)
			tree.Flush()

			rng := stats.NewRNG(cfg.Seed + 7)
			var zipf *stats.Zipf
			if skewed {
				zipf = stats.NewZipf(cfg.KeySpace, cfg.Theta)
			}
			flushesBefore := tree.Flushes
			ms := measurePhase(clk, cfg.Ops, func(i int) {
				var id uint64
				if zipf != nil {
					id = uint64(zipf.Next(rng))
				} else {
					id = uint64(rng.Int63n(cfg.KeySpace))
				}
				tree.Upsert(cfg.Spec.Key(id), 1)
			}, tree.Flush)
			rows = append(rows, FlushPolicyRow{
				Policy:   policy,
				Skewed:   skewed,
				InsertMs: ms,
				Flushes:  float64(tree.Flushes-flushesBefore) / float64(cfg.Ops) * 1000,
			})
		}
	}
	return rows
}

// RenderFlushPolicy formats E14.
func RenderFlushPolicy(rows []FlushPolicyRow) string {
	var cells [][]string
	for _, r := range rows {
		dist := "uniform"
		if r.Skewed {
			dist = "zipf"
		}
		cells = append(cells, []string{r.Policy.String(), dist, f3(r.InsertMs), f2(r.Flushes)})
	}
	return RenderTable("E14 (flush-policy ablation): fullest-child flushing moves more bytes per rewrite",
		[]string{"Policy", "keys", "upsert ms/op", "flushes/kop"}, cells)
}
