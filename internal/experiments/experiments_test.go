// Integration tests: run every experiment harness at reduced scale and
// assert the paper's qualitative claims — who wins, where knees fall, which
// error bounds hold. These are the "shape" checks EXPERIMENTS.md reports at
// full scale.

package experiments

import (
	"strings"
	"testing"

	"iomodels/internal/betree"
	"iomodels/internal/hdd"
	"iomodels/internal/ssd"
	"iomodels/internal/veb"
	"iomodels/internal/workload"
)

// smallPDAM scales E1 down for test time.
func smallPDAM() PDAMConfig {
	cfg := DefaultPDAMConfig()
	cfg.PerThreadIOs = 300
	return cfg
}

func TestE1E2PDAMValidation(t *testing.T) {
	series := Figure1(smallPDAM())
	if len(series) != 4 {
		t.Fatalf("%d devices", len(series))
	}
	for _, s := range series {
		// Figure 1 shape: flat-ish early, growing late.
		first := s.Points[0].Seconds
		second := s.Points[1].Seconds
		last := s.Points[len(s.Points)-1].Seconds
		if second > 1.6*first {
			t.Errorf("%s: time at p=2 is %.2fx p=1; expected near-flat", s.Device, second/first)
		}
		if last < 4*first {
			t.Errorf("%s: no saturation growth (%.2fx)", s.Device, last/first)
		}
	}
	rows, err := Table1(series, smallPDAM())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"Samsung 860 pro":   3.3,
		"Samsung 970 pro":   5.5,
		"Silicon Power S55": 2.9,
		"Sandisk Ultra II":  4.6,
	}
	wantSat := map[string]float64{
		"Samsung 860 pro":   530,
		"Samsung 970 pro":   2500,
		"Silicon Power S55": 260,
		"Sandisk Ultra II":  520,
	}
	for _, r := range rows {
		if r.R2 < 0.97 {
			t.Errorf("%s: R² = %.4f (paper ≥ 0.986)", r.Device, r.R2)
		}
		if w := want[r.Device]; r.P < 0.5*w || r.P > 2*w {
			t.Errorf("%s: derived P %.2f vs paper %.1f", r.Device, r.P, w)
		}
		if w := wantSat[r.Device]; r.SatMBps < 0.6*w || r.SatMBps > 1.5*w {
			t.Errorf("%s: saturation %.0f MB/s vs paper %.0f", r.Device, r.SatMBps, w)
		}
	}
	if !strings.Contains(RenderTable1(rows), "Samsung") {
		t.Fatal("render broken")
	}
	if !strings.Contains(RenderFigure1CSV(series), "threads") {
		t.Fatal("csv broken")
	}
}

func TestE7PDAMPredictionErrors(t *testing.T) {
	cfg := smallPDAM()
	series := Figure1(cfg)
	rows, err := Table1(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds := PDAMPrediction(series, rows, cfg)
	for _, p := range preds {
		// Paper: PDAM within 14%; allow a bit of slack at reduced volume.
		if p.PDAMMaxRelErr > 0.25 {
			t.Errorf("%s: PDAM error %.1f%% (paper ≤14%%)", p.Device, p.PDAMMaxRelErr*100)
		}
		// Paper: DAM overestimates by roughly P (2.5..12).
		if p.DAMMaxOverEst < 0.6*p.DerivedP {
			t.Errorf("%s: DAM overestimate %.1fx, expected ≈P=%.1f", p.Device, p.DAMMaxOverEst, p.DerivedP)
		}
	}
	if !strings.Contains(RenderPrediction(preds), "PDAM") {
		t.Fatal("render broken")
	}
}

func TestE3AffineValidation(t *testing.T) {
	cfg := DefaultAffineConfig()
	cfg.Rounds = 32
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d drives", len(rows))
	}
	for _, r := range rows {
		if r.R2 < 0.995 {
			t.Errorf("%s: R² = %.4f (paper ≥ 0.9972)", r.Device, r.R2)
		}
		if rel := abs(r.S-r.TrueS) / r.TrueS; rel > 0.15 {
			t.Errorf("%s: fitted s %.4f vs true %.4f", r.Device, r.S, r.TrueS)
		}
		if rel := abs(r.TPer4K-r.TrueT4K) / r.TrueT4K; rel > 0.15 {
			t.Errorf("%s: fitted t %.6f vs true %.6f", r.Device, r.TPer4K, r.TrueT4K)
		}
	}
	if !strings.Contains(RenderTable2(rows), "Hitachi") {
		t.Fatal("render broken")
	}
	if !strings.Contains(RenderTable2CSV(rows), "blocks_4k") {
		t.Fatal("csv broken")
	}
}

func TestE8AffinePredictionErrors(t *testing.T) {
	cfg := DefaultAffineConfig()
	cfg.Rounds = 32
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range AffinePrediction(rows) {
		if p.AffineMaxErr > 0.25 {
			t.Errorf("%s: affine error %.1f%% (paper ≤25%%)", p.Device, p.AffineMaxErr*100)
		}
		if p.DAMMaxRatio > 2.3 || p.DAMMaxRatio < 1.2 {
			t.Errorf("%s: DAM ratio %.2fx (paper: up to ~2x)", p.Device, p.DAMMaxRatio)
		}
	}
}

func TestE4SensitivitySweep(t *testing.T) {
	pts := Table3Sweep(DefaultSensitivityConfig())
	first, last := pts[0], pts[len(pts)-1]
	// B-tree (row 0) cost grows steeply with B; Bε-tree (row 1) much less.
	bGrow := last.Rows[0].Query / first.Rows[0].Query
	eGrow := last.Rows[1].Query / first.Rows[1].Query
	if bGrow < 3*eGrow {
		t.Fatalf("sensitivity gap missing: B-tree %.1fx vs Bε %.1fx", bGrow, eGrow)
	}
	if !strings.Contains(RenderTable3(pts), "B-tree") {
		t.Fatal("render broken")
	}
}

// smallFig2 scales Figure 2 for test time.
func smallFig2() NodeSizeConfig {
	cfg := DefaultFigure2Config()
	cfg.Items = 25_000
	cfg.CacheBytes = 1 << 20
	cfg.QueryOps = 100
	cfg.InsertOps = 300
	cfg.NodeSizes = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	return cfg
}

// skipUnderRace skips the full-scale single-client harnesses when built
// with the race detector: they exercise no goroutine concurrency, and
// their 10-20x race slowdown pushes the package past the test timeout.
// The concurrent paths (E9, E9-dynamic, the engine pager, tree sessions)
// stay in the race pass at full strength.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceDetector {
		t.Skip("full-scale single-client harness: covered by the non-race pass")
	}
}

func TestE5Figure2BTreeNodeSize(t *testing.T) {
	skipUnderRace(t)
	cfg := smallFig2()
	res := Figure2(cfg)
	if len(res.Points) != len(cfg.NodeSizes) {
		t.Fatalf("%d points", len(res.Points))
	}
	// Paper: costs grow once nodes pass the optimum; the largest node must
	// be clearly worse than the best.
	bestQ, lastQ := res.Points[0].QueryMs, res.Points[len(res.Points)-1].QueryMs
	for _, p := range res.Points {
		if p.QueryMs < bestQ {
			bestQ = p.QueryMs
		}
	}
	if lastQ < 1.5*bestQ {
		t.Errorf("1MiB query cost %.2f not clearly above best %.2f", lastQ, bestQ)
	}
	// The affine model curve must track the measurement within 2x everywhere.
	for _, p := range res.Points {
		if p.ModelQueryMs > 3*p.QueryMs || p.QueryMs > 3*p.ModelQueryMs {
			t.Errorf("model query %.2f vs measured %.2f at %d", p.ModelQueryMs, p.QueryMs, p.NodeBytes)
		}
	}
	if !strings.Contains(RenderNodeSize(res, "fig2"), "Node size") {
		t.Fatal("render broken")
	}
	if !strings.Contains(RenderNodeSizeCSV(res), "node_bytes") {
		t.Fatal("csv broken")
	}

	// E10: the measured optimum must sit below the half-bandwidth point,
	// like the model optimum.
	opt := Corollary7Check(res, cfg)
	if float64(opt.MeasuredBestInsert) >= opt.HalfBandwidth {
		t.Errorf("measured insert optimum %d not below half-bandwidth %.0f",
			opt.MeasuredBestInsert, opt.HalfBandwidth)
	}
	if opt.ModelOptimal >= opt.HalfBandwidth {
		t.Errorf("model optimum %.0f not below half-bandwidth %.0f", opt.ModelOptimal, opt.HalfBandwidth)
	}
	if !strings.Contains(RenderOptima(opt), "half-bandwidth") {
		t.Fatal("render broken")
	}
}

// smallFig3 scales Figure 3 for test time.
func smallFig3() NodeSizeConfig {
	cfg := DefaultFigure3Config()
	cfg.Items = 60_000
	cfg.CacheBytes = 3 << 21 >> 1 // 1.5 MiB
	cfg.QueryOps = 80
	cfg.InsertOps = 4000
	cfg.NodeSizes = []int{64 << 10, 256 << 10, 1 << 20, 2 << 20}
	return cfg
}

func TestE6Figure3BeTreeNodeSize(t *testing.T) {
	skipUnderRace(t)
	fig3 := Figure3(smallFig3())
	fig2 := Figure2(smallFig2())

	// Core claim: the Bε-tree is much less sensitive to node size than the
	// B-tree. Compare cost growth from 64 KiB to the top of each sweep.
	growth := func(res NodeSizeResult, metric func(NodeSizePoint) float64, from int) float64 {
		var base float64
		for _, p := range res.Points {
			if p.NodeBytes == from {
				base = metric(p)
			}
		}
		return metric(res.Points[len(res.Points)-1]) / base
	}
	q := func(p NodeSizePoint) float64 { return p.QueryMs }
	bGrow := growth(fig2, q, 64<<10)  // 64K -> 1M (16x)
	eGrow := growth(fig3, q, 256<<10) // 256K -> 2M (8x)
	if eGrow > bGrow {
		t.Errorf("Bε query growth %.2fx not below B-tree %.2fx over a 16x size range", eGrow, bGrow)
	}
	// Bε-tree inserts must beat B-tree inserts by a wide margin at any size.
	bIns := fig2.Points[2].InsertMs // 64 KiB
	eIns := fig3.Points[0].InsertMs // 64 KiB
	if eIns > bIns/5 {
		t.Errorf("Bε insert %.3f ms not ≫ faster than B-tree %.3f ms", eIns, bIns)
	}
}

func TestE11Theorem9Ablation(t *testing.T) {
	cfg := smallFig3()
	rows := Theorem9Ablation(cfg, 512<<10)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Query cost must improve at each step of the ablation.
	if !(rows[2].QueryMs < rows[0].QueryMs) {
		t.Errorf("Theorem 9 (%.3f) not cheaper than whole-node (%.3f)", rows[2].QueryMs, rows[0].QueryMs)
	}
	if !(rows[1].QueryMs < rows[0].QueryMs) {
		t.Errorf("segmented buffers (%.3f) not cheaper than whole-node (%.3f)", rows[1].QueryMs, rows[0].QueryMs)
	}
	if !(rows[2].QueryMs < rows[1].QueryMs) {
		t.Errorf("pivots-in-parent (%.3f) not cheaper than meta+slot (%.3f)", rows[2].QueryMs, rows[1].QueryMs)
	}
	if !strings.Contains(RenderAblation(rows, 512<<10), "Theorem 9") {
		t.Fatal("render broken")
	}
}

func TestE12WriteAmp(t *testing.T) {
	skipUnderRace(t)
	cfg := DefaultWriteAmpConfig()
	cfg.Items = 25_000
	cfg.CacheBytes = 1 << 20
	cfg.NodeSizes = []int{64 << 10, 512 << 10}
	rows := WriteAmp(cfg)
	byKey := map[string]WriteAmpRow{}
	for _, r := range rows {
		byKey[r.Structure+humanBytes(r.NodeBytes)] = r
	}
	bSmall := byKey["B-tree64KiB"]
	bBig := byKey["B-tree512KiB"]
	eSmall := byKey["Bε-tree64KiB"]
	eBig := byKey["Bε-tree512KiB"]
	// Lemma 3: B-tree WA grows ~linearly with node size.
	if bBig.WriteAmp < 3*bSmall.WriteAmp {
		t.Errorf("B-tree WA growth %.1f -> %.1f not near-linear in node size", bSmall.WriteAmp, bBig.WriteAmp)
	}
	// Theorem 4(4): Bε-tree WA much smaller and much less size-sensitive.
	if eBig.WriteAmp >= bBig.WriteAmp/3 {
		t.Errorf("Bε WA %.1f not ≪ B-tree WA %.1f at 512KiB", eBig.WriteAmp, bBig.WriteAmp)
	}
	if eBig.WriteAmp > 6*eSmall.WriteAmp {
		t.Errorf("Bε WA too size-sensitive: %.1f -> %.1f", eSmall.WriteAmp, eBig.WriteAmp)
	}
	if !strings.Contains(RenderWriteAmp(rows), "LSM") {
		t.Fatal("render broken")
	}
}

func TestE9Lemma13(t *testing.T) {
	cfg := DefaultLemma13Config()
	cfg.Items = 1 << 17
	cfg.QueriesPerClient = 60
	rows := Lemma13(cfg)
	get := func(d veb.Design, k int) Lemma13Row {
		for _, r := range rows {
			if r.Design == d && r.Clients == k {
				return r
			}
		}
		t.Fatalf("missing row %v/%d", d, k)
		return Lemma13Row{}
	}
	// k=1: vEB must be far better than one-block nodes (which waste the
	// device's parallelism) and at least match whole-node fetch.
	v1 := get(veb.VEBNodes, 1)
	b1 := get(veb.BlockNodes, 1)
	w1 := get(veb.WholeNodeFetch, 1)
	if v1.Throughput < 1.5*b1.Throughput {
		t.Errorf("k=1: vEB %.3f not ≫ block nodes %.3f", v1.Throughput, b1.Throughput)
	}
	if v1.Throughput < 0.9*w1.Throughput {
		t.Errorf("k=1: vEB %.3f below whole-node %.3f", v1.Throughput, w1.Throughput)
	}
	// k=P: vEB must be far better than whole-node fetch and near one-block.
	vP := get(veb.VEBNodes, cfg.P)
	bP := get(veb.BlockNodes, cfg.P)
	wP := get(veb.WholeNodeFetch, cfg.P)
	if vP.Throughput < 2*wP.Throughput {
		t.Errorf("k=P: vEB %.3f not ≫ whole-node %.3f", vP.Throughput, wP.Throughput)
	}
	if vP.Throughput < 0.6*bP.Throughput {
		t.Errorf("k=P: vEB %.3f far below block nodes %.3f", vP.Throughput, bP.Throughput)
	}
	// Throughput grows with k for the vEB design.
	if vP.Throughput <= v1.Throughput {
		t.Errorf("vEB throughput did not grow with k: %.3f -> %.3f", v1.Throughput, vP.Throughput)
	}
	if !strings.Contains(RenderLemma13(rows), "vEB") {
		t.Fatal("render broken")
	}
}

func TestE9DynamicLemma13(t *testing.T) {
	cfg := DefaultLemma13DynamicConfig()
	cfg.Items = 40_000
	cfg.QueriesPerClient = 60
	rows := Lemma13Dynamic(cfg)
	byTree := map[string][]Lemma13DynamicRow{}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Fatalf("%s k=%d: throughput %v", r.Tree, r.Clients, r.Throughput)
		}
		byTree[r.Tree] = append(byTree[r.Tree], r)
	}
	for _, name := range []string{"B-tree", "Bε-tree"} {
		trRows := byTree[name]
		if len(trRows) != len(cfg.Clients) {
			t.Fatalf("%s: %d rows, want %d", name, len(trRows), len(cfg.Clients))
		}
		// Lemma 13 shape: aggregate throughput never decreases as clients
		// are added (5% tolerance for packing noise), and the device's
		// parallelism actually helps: k=P must be several times k=1.
		for i := 1; i < len(trRows); i++ {
			prev, cur := trRows[i-1], trRows[i]
			if cur.Throughput < 0.95*prev.Throughput {
				t.Errorf("%s: throughput fell %.3f -> %.3f from k=%d to k=%d",
					name, prev.Throughput, cur.Throughput, prev.Clients, cur.Clients)
			}
		}
		first, last := trRows[0], trRows[len(trRows)-1]
		if last.Throughput < 3*first.Throughput {
			t.Errorf("%s: k=%d throughput %.3f not ≫ k=1 %.3f — clients are serializing",
				name, last.Clients, last.Throughput, first.Throughput)
		}
	}
	out := RenderLemma13Dynamic(rows)
	if !strings.Contains(out, "B-tree") || !strings.Contains(out, "Bε-tree") {
		t.Fatal("render broken")
	}
}

func TestRenderHelpers(t *testing.T) {
	tbl := RenderTable("t", []string{"a", "bb"}, [][]string{{"1", "2"}})
	if !strings.Contains(tbl, "t\n") || !strings.Contains(tbl, "bb") {
		t.Fatalf("table: %q", tbl)
	}
	csv := RenderCSV([]string{"a"}, [][]string{{"1"}})
	if csv != "a\n1\n" {
		t.Fatalf("csv: %q", csv)
	}
	if humanBytes(4096) != "4KiB" || humanBytes(2<<20) != "2MiB" || humanBytes(100) != "100B" {
		t.Fatal("humanBytes wrong")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Silence unused-import lint in case of build-tag pruning.
var _ = betree.DefaultFanout
var _ = hdd.DefaultProfile
var _ = workload.DefaultSpec

// TestE13ScanDichotomy asserts the OLTP/OLAP observation of §5: range-query
// cost per item falls as B-tree nodes grow, opposite to point operations —
// the paper's explanation for why OLAP B-trees use large leaves and OLTP
// small ones.
func TestE13ScanDichotomy(t *testing.T) {
	skipUnderRace(t)
	cfg := smallFig2()
	cfg.NodeSizes = []int{4 << 10, 64 << 10, 1 << 20}
	cfg.ScanOps = 10
	cfg.ScanLen = 600
	res := Figure2(cfg)
	first := res.Points[0]                // 4 KiB
	last := res.Points[len(res.Points)-1] // 1 MiB
	if last.ScanUsItem >= first.ScanUsItem {
		t.Errorf("scan µs/item did not fall with node size: %.1f -> %.1f", first.ScanUsItem, last.ScanUsItem)
	}
	if last.QueryMs <= first.QueryMs {
		t.Errorf("point query cost fell with node size: %.2f -> %.2f (dichotomy missing)", first.QueryMs, last.QueryMs)
	}
	// The affine range model must track the measurement loosely.
	for _, p := range res.Points {
		if p.ModelScanUsIt > 5*p.ScanUsItem || p.ScanUsItem > 5*p.ModelScanUsIt {
			t.Errorf("scan model %.1f vs measured %.1f at %d", p.ModelScanUsIt, p.ScanUsItem, p.NodeBytes)
		}
	}
}

// TestE14FlushPolicy asserts the paper's flush-the-fullest-child rule beats
// round-robin, especially under skew.
func TestE14FlushPolicy(t *testing.T) {
	cfg := DefaultFlushPolicyConfig()
	cfg.Items = 40_000
	cfg.Ops = 15_000
	cfg.KeySpace = 40_000
	rows := FlushPolicyAblation(cfg)
	get := func(p betree.FlushPolicy, skew bool) FlushPolicyRow {
		for _, r := range rows {
			if r.Policy == p && r.Skewed == skew {
				return r
			}
		}
		t.Fatal("missing row")
		return FlushPolicyRow{}
	}
	for _, skew := range []bool{false, true} {
		full := get(betree.FlushFullest, skew)
		rr := get(betree.FlushRoundRobin, skew)
		if full.InsertMs > rr.InsertMs*1.05 {
			t.Errorf("skew=%v: fullest-child (%.3f ms) worse than round-robin (%.3f ms)", skew, full.InsertMs, rr.InsertMs)
		}
	}
	fullSkew := get(betree.FlushFullest, true)
	rrSkew := get(betree.FlushRoundRobin, true)
	if fullSkew.InsertMs >= rrSkew.InsertMs {
		t.Errorf("under skew fullest-child (%.3f) did not beat round-robin (%.3f)", fullSkew.InsertMs, rrSkew.InsertMs)
	}
	if !strings.Contains(RenderFlushPolicy(rows), "fullest") {
		t.Fatal("render broken")
	}
}

// TestE15DeviceFamilies runs the B-tree node-size sweep on an SSD and
// checks the cross-device claims: random point operations are far cheaper
// than on the HDD, and the optimal node size is no larger (the SSD's setup
// cost — hence its half-bandwidth point — is much smaller).
func TestE15DeviceFamilies(t *testing.T) {
	skipUnderRace(t)
	hddCfg := smallFig2()
	hddCfg.NodeSizes = []int{4 << 10, 64 << 10, 512 << 10}
	hddCfg.ScanOps = 0
	ssdCfg := hddCfg
	prof := ssd.Profiles()[0]
	ssdCfg.SSD = &prof

	hddRes := Figure2(hddCfg)
	ssdRes := Figure2(ssdCfg)

	best := func(res NodeSizeResult) (int, float64) {
		bi := 0
		for i, p := range res.Points {
			if p.QueryMs < res.Points[bi].QueryMs {
				bi = i
			}
		}
		return res.Points[bi].NodeBytes, res.Points[bi].QueryMs
	}
	hddBest, hddMs := best(hddRes)
	ssdBest, ssdMs := best(ssdRes)
	if ssdMs > hddMs/4 {
		t.Errorf("SSD best query %.3f ms not ≪ HDD %.3f ms", ssdMs, hddMs)
	}
	if ssdBest > hddBest {
		t.Errorf("SSD optimum %d larger than HDD optimum %d", ssdBest, hddBest)
	}
	if ssdRes.Device != prof.Name {
		t.Errorf("device name %q", ssdRes.Device)
	}
	// The SSD's half-bandwidth point must be far below the HDD's.
	if ssdCfg.affine().HalfBandwidthBytes() > hddCfg.affine().HalfBandwidthBytes()/4 {
		t.Error("SSD half-bandwidth point not far below HDD's")
	}
}

// TestDeterminism is the repository's reproducibility contract: running a
// harness twice produces bit-identical results.
func TestDeterminism(t *testing.T) {
	cfg := DefaultAffineConfig()
	cfg.Rounds = 16
	a, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if RenderTable2(a) != RenderTable2(b) {
		t.Fatal("Table 2 not deterministic")
	}

	pc := smallPDAM()
	pc.PerThreadIOs = 100
	s1 := Figure1(pc)
	s2 := Figure1(pc)
	for i := range s1 {
		for j := range s1[i].Points {
			if s1[i].Points[j] != s2[i].Points[j] {
				t.Fatalf("Figure 1 not deterministic at %d/%d", i, j)
			}
		}
	}

	lc := DefaultLemma13Config()
	lc.Items = 1 << 14
	lc.QueriesPerClient = 20
	r1 := Lemma13(lc)
	r2 := Lemma13(lc)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("Lemma 13 not deterministic at %d", i)
		}
	}
}

// TestE16Aging asserts the §5 aging claim: random churn degrades the
// B-tree's range scans sharply, while the Bε-tree's big nodes resist.
func TestE16Aging(t *testing.T) {
	skipUnderRace(t)
	cfg := DefaultAgingConfig()
	cfg.Items = 60_000
	cfg.ChurnOps = 40_000
	cfg.ScanOps = 10
	cfg.ScanLen = 1000
	cfg.CacheBytes = 1 << 20
	rows := Aging(cfg)
	var bt, be AgingRow
	for _, r := range rows {
		if strings.HasPrefix(r.Structure, "B-tree") {
			bt = r
		} else {
			be = r
		}
	}
	if bt.AgingPenalty < 1.5 {
		t.Errorf("B-tree aging penalty %.2fx; expected sharp degradation", bt.AgingPenalty)
	}
	if be.AgingPenalty > bt.AgingPenalty/1.5 {
		t.Errorf("Bε-tree penalty %.2fx not well below B-tree's %.2fx", be.AgingPenalty, bt.AgingPenalty)
	}
	if !strings.Contains(RenderAging(rows), "aging") {
		t.Fatal("render broken")
	}
}

// TestE17Asymmetry asserts the §3 read/write asymmetry: write saturation
// bandwidth sits well below read saturation on every flash profile.
func TestE17Asymmetry(t *testing.T) {
	cfg := smallPDAM()
	cfg.PerThreadIOs = 150
	rows, err := Asymmetry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		prof := ssd.Profiles()[i]
		// Expected write ceiling: program time scales the die side by
		// WriteFactor; the channel side is direction-agnostic. Devices whose
		// channels bound both directions legitimately show ~1x (interface-
		// bound, like real SATA drives); die-bound devices must show the
		// asymmetry.
		dieRead := prof.SaturationBandwidth(prof.StripeBytes)
		perDieWrite := float64(prof.StripeBytes) /
			(float64(prof.PieceTime(prof.StripeBytes)) * prof.WriteFactor / 1e9)
		dieWrite := perDieWrite * float64(prof.Dies())
		chanTotal := prof.ChanBandwidth * float64(prof.Channels)
		expWrite := dieWrite
		if chanTotal < expWrite {
			expWrite = chanTotal
		}
		expRatio := dieRead / expWrite
		if r.Ratio < 1 {
			t.Errorf("%s: writes faster than reads (%.2f)", r.Device, r.Ratio)
		}
		if r.Ratio < expRatio*0.7 || r.Ratio > expRatio*1.4 {
			t.Errorf("%s: ratio %.2f, analytic expectation %.2f", r.Device, r.Ratio, expRatio)
		}
		if r.WriteP <= 0 {
			t.Errorf("%s: degenerate write parallelism", r.Device)
		}
	}
	// At least the die-bound SATA devices show clear asymmetry.
	if rows[0].Ratio < 1.3 && rows[2].Ratio < 1.3 {
		t.Errorf("no device shows write asymmetry: %+v", rows)
	}
	if !strings.Contains(RenderAsymmetry(rows), "asymmetry") {
		t.Fatal("render broken")
	}
}

// TestE18EpsilonSpectrum asserts Theorem 4's tradeoff direction: growing
// the fanout from the buffered-repository end toward the B-tree end makes
// queries cheaper and inserts dearer.
func TestE18EpsilonSpectrum(t *testing.T) {
	skipUnderRace(t)
	cfg := DefaultEpsilonConfig()
	cfg.Items = 60_000
	cfg.QueryOps = 80
	cfg.InsertOps = 5000
	cfg.NodeBytes = 256 << 10
	cfg.Fanouts = []int{2, 8, 32}
	cfg.CacheBytes = 2 << 20
	rows := EpsilonSweep(cfg)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	lo, hi := rows[0], rows[len(rows)-1]
	if !(lo.Epsilon < hi.Epsilon) {
		t.Fatalf("epsilon not increasing: %v -> %v", lo.Epsilon, hi.Epsilon)
	}
	if !(hi.InsertMs > lo.InsertMs) {
		t.Errorf("insert cost did not rise with ε: F=2 %.3f vs F=32 %.3f", lo.InsertMs, hi.InsertMs)
	}
	if !(hi.QueryMs < lo.QueryMs) {
		t.Errorf("query cost did not fall with ε: F=2 %.3f vs F=32 %.3f", lo.QueryMs, hi.QueryMs)
	}
	if !(hi.Height < lo.Height) {
		t.Errorf("height did not shrink with fanout: %d vs %d", lo.Height, hi.Height)
	}
	if !strings.Contains(RenderEpsilon(rows), "spectrum") {
		t.Fatal("render broken")
	}
}

// TestE19Durability runs the §3 durability-tax harness at reduced scale and
// checks its structural claims: with the WAL on, every structure pays a
// logging component of roughly one (each logical byte is logged once, plus
// framing), checkpoints happen, the crash drill replays the operations
// logged after the last checkpoint, and recovery cost orders like insert
// cost (LSM cheapest).
func TestE19Durability(t *testing.T) {
	skipUnderRace(t)
	cfg := DefaultCrashConfig()
	cfg.Items = 12_000
	cfg.CacheBytes = 1 << 20
	cfg.NodeBytes = 32 << 10
	cfg.Durability.JournalBytes = 16 << 20
	cfg.Durability.CheckpointEveryBytes = 512 << 10
	rows := Crash(cfg)
	if len(rows) != 3 {
		t.Fatalf("want 3 structures, got %d", len(rows))
	}
	for _, r := range rows {
		if r.LogWA < 1 || r.LogWA > 2 {
			t.Errorf("%s: log WA %.2f outside [1,2]", r.Structure, r.LogWA)
		}
		if r.Checkpoints < 2 {
			t.Errorf("%s: only %d checkpoints", r.Structure, r.Checkpoints)
		}
		if r.DurableWA <= r.LogWA {
			t.Errorf("%s: durable WA %.2f not above its log component %.2f", r.Structure, r.DurableWA, r.LogWA)
		}
		if r.Replayed <= 0 {
			t.Errorf("%s: crash drill replayed nothing", r.Structure)
		}
		if r.RecoveryTime <= 0 {
			t.Errorf("%s: no recovery time accrued", r.Structure)
		}
		if r.Stats.Err != nil {
			t.Errorf("%s: sticky durability error: %v", r.Structure, r.Stats.Err)
		}
	}
	if rows[2].RecoveryTime >= rows[0].RecoveryTime {
		t.Errorf("LSM recovery (%v) not cheaper than B-tree recovery (%v)", rows[2].RecoveryTime, rows[0].RecoveryTime)
	}
	if !strings.Contains(RenderCrash(rows), "durability tax") {
		t.Fatal("render broken")
	}
}

// TestE20Serving is the serving experiment's shape check: through the full
// TCP stack, the batch-of-P read scheduler scales with clients up to ~P while
// the batch-of-1 (DAM-style) scheduler stays flat, and concurrent writers
// share WAL flushes where a serial writer pays one flush per write.
func TestE20Serving(t *testing.T) {
	skipUnderRace(t)
	cfg := DefaultServingConfig()
	cfg.Items = 30_000
	cfg.OpsPerClient = 40
	cfg.Writers = 16
	cfg.WritesPerWriter = 20
	rows, commits, err := Serving(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string][]ServingRow{}
	for _, r := range rows {
		if r.Throughput <= 0 || r.Steps <= 0 {
			t.Fatalf("%s k=%d: degenerate row %+v", r.Mode, r.Clients, r)
		}
		byMode[r.Mode] = append(byMode[r.Mode], r)
	}
	for _, mode := range []string{"dam", "pdam"} {
		if len(byMode[mode]) != len(cfg.Clients) {
			t.Fatalf("%s: %d rows, want %d", mode, len(byMode[mode]), len(cfg.Clients))
		}
	}
	pdam, dam := byMode["pdam"], byMode["dam"]
	// The PDAM scheduler scales: aggregate throughput never decreases as
	// clients are added (15% tolerance for TCP arrival jitter), and k=P is
	// several times k=1.
	for i := 1; i < len(pdam); i++ {
		if pdam[i].Throughput < 0.85*pdam[i-1].Throughput {
			t.Errorf("pdam: throughput fell %.3f -> %.3f from k=%d to k=%d",
				pdam[i-1].Throughput, pdam[i].Throughput, pdam[i-1].Clients, pdam[i].Clients)
		}
	}
	first, last := pdam[0], pdam[len(pdam)-1]
	if last.Throughput < 3*first.Throughput {
		t.Errorf("pdam: k=%d throughput %.3f not ≫ k=1 %.3f — batching is not overlapping IOs",
			last.Clients, last.Throughput, first.Throughput)
	}
	// Acceptance: the batched plateau is at least 2x the DAM-style scheduler
	// under the same load.
	damLast := dam[len(dam)-1]
	t.Logf("plateau: pdam=%.3f dam=%.3f gets/step (ratio %.2f)",
		last.Throughput, damLast.Throughput, last.Throughput/damLast.Throughput)
	if last.Throughput < 2*damLast.Throughput {
		t.Errorf("pdam plateau %.3f < 2x dam plateau %.3f", last.Throughput, damLast.Throughput)
	}
	// Group commit: the serial writer pays one flush per write; concurrent
	// writers share flushes.
	if len(commits) != 2 {
		t.Fatalf("want 2 commit rows, got %d", len(commits))
	}
	serial, conc := commits[0], commits[1]
	if serial.Writers != 1 || serial.Records == 0 || serial.Commits != serial.Records {
		t.Errorf("serial writer should flush per write: %+v", serial)
	}
	if conc.Records != serial.Records {
		t.Errorf("write phases unbalanced: serial %d records, concurrent %d", serial.Records, conc.Records)
	}
	if conc.Commits == 0 || conc.Commits >= conc.Records {
		t.Errorf("concurrent writers did not share WAL flushes: %+v", conc)
	}
	t.Logf("group commit: %d records in %d flushes (%.2f writes/flush)",
		conc.Records, conc.Commits, conc.PerFlush)
	out := RenderServing(rows)
	if !strings.Contains(out, "pdam") || !strings.Contains(RenderServingCommit(commits), "writes/flush") {
		t.Fatal("render broken")
	}
}

func TestE22MVCCServe(t *testing.T) {
	skipUnderRace(t)
	cfg := DefaultMVCCServeConfig()
	cfg.Items = 12_000
	cfg.OpsPerReader = 100
	rows, err := MVCCServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]MVCCServeRow{}
	for _, r := range rows {
		if r.Reads == 0 || r.P99Us <= 0 {
			t.Fatalf("%s: degenerate row %+v", r.Mode, r)
		}
		byMode[r.Mode] = r
	}
	idle, loadedSnap, plain := byMode["snap-idle"], byMode["snap-loaded"], byMode["plain-loaded"]
	if idle.Mode == "" || loadedSnap.Mode == "" || plain.Mode == "" {
		t.Fatalf("missing rounds: %+v", rows)
	}
	// Pinned hot-set reads must be answered by version chains, idle or not.
	if idle.ChainHitPct < 90 || loadedSnap.ChainHitPct < 90 {
		t.Errorf("chain hit%% too low: idle %.1f loaded %.1f", idle.ChainHitPct, loadedSnap.ChainHitPct)
	}
	if plain.ChainHitPct != 0 {
		t.Errorf("plain gets consulted chains: %.1f%%", plain.ChainHitPct)
	}
	// Acceptance (ISSUE): snapshot point-read p99 under saturating write
	// load stays within 1.5x of the idle-writer p99. Chain hits dodge the
	// scheduler and the writer's state lock, so the device-side cost of
	// write pressure must not leak in; what does remain is host-CPU
	// contention from the closed-loop writer goroutines, which inflates
	// every wall-clock tail on a small CI box — an absolute floor absorbs
	// that jitter on sub-millisecond reads.
	bound := 1.5 * idle.P99Us
	if floor := 3000.0; bound < floor {
		bound = floor
	}
	t.Logf("p99 µs: snap-idle=%.0f snap-loaded=%.0f plain-loaded=%.0f",
		idle.P99Us, loadedSnap.P99Us, plain.P99Us)
	if loadedSnap.P99Us > bound {
		t.Errorf("snap-loaded p99 %.0fµs exceeds bound %.0fµs (1.5x idle %.0fµs)",
			loadedSnap.P99Us, bound, idle.P99Us)
	}
	// Under the same write load, the pinned path must beat the shared
	// path where it is stable: the median. (p99 of both is dominated by
	// the same host jitter and can cross in a single run.)
	if loadedSnap.P50Us >= plain.P50Us {
		t.Errorf("snap-loaded p50 %.0fµs not below plain-loaded p50 %.0fµs",
			loadedSnap.P50Us, plain.P50Us)
	}
	if !strings.Contains(RenderMVCCServe(rows), "chain hit%") {
		t.Fatal("render broken")
	}
}

// TestE24ShipLag runs the replication-lag experiment at reduced scale and
// asserts the trade-off direction: the sync-ship gate shows up as gate
// waits and dearer writes, and buys acked==committed at the end; the async
// round pays no gate but the replica's lag estimator records real lag. The
// round is all goroutines-over-TCP, so it stays in the race pass.
func TestE24ShipLag(t *testing.T) {
	cfg := DefaultShipLagConfig()
	cfg.Writers = 6
	cfg.WritesPerWriter = 60
	rows, err := ShipLag(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "async" || rows[1].Mode != "sync" {
		t.Fatalf("rows: %+v", rows)
	}
	async, syncRow := rows[0], rows[1]
	for _, r := range rows {
		if r.Writes != int64(cfg.Writers*cfg.WritesPerWriter) || r.P50Us <= 0 {
			t.Fatalf("%s: degenerate row %+v", r.Mode, r)
		}
		// Both rounds drain fully, so the final LSNs must line up and the
		// estimator must have seen the stream (one sample per pull).
		if r.LagSamples == 0 {
			t.Errorf("%s: lag estimator saw no pulls", r.Mode)
		}
		if r.FinalLSN == 0 {
			t.Errorf("%s: no committed LSN", r.Mode)
		}
	}
	t.Logf("put p50 µs: async=%.0f sync=%.0f; gate waits: async=%d sync=%d (p99 %.0fµs); lag max: async=%dlsn/%.2fms sync=%dlsn/%.2fms",
		async.P50Us, syncRow.P50Us, async.GateWaits, syncRow.GateWaits, syncRow.GateP99Us,
		async.LagMaxLSNs, async.LagMaxMs, syncRow.LagMaxLSNs, syncRow.LagMaxMs)
	// The gate exists only in the sync round.
	if async.GateWaits != 0 {
		t.Errorf("async round recorded %d gate waits", async.GateWaits)
	}
	if syncRow.GateWaits == 0 || syncRow.GateP99Us <= 0 {
		t.Errorf("sync round recorded no gate waits: %+v", syncRow)
	}
	// The guarantee the gate buys: nothing acknowledged is unreplicated.
	if syncRow.AckedLSN != syncRow.FinalLSN {
		t.Errorf("sync: acked LSN %d != committed %d", syncRow.AckedLSN, syncRow.FinalLSN)
	}
	// The price: the gated write path is slower than the async one.
	if syncRow.P50Us <= async.P50Us {
		t.Errorf("sync put p50 %.0fµs not above async %.0fµs", syncRow.P50Us, async.P50Us)
	}
	// The async replica really applied stale records (lag seconds > 0).
	if async.LagMaxMs <= 0 {
		t.Errorf("async round recorded no temporal lag: %+v", async)
	}
	if !strings.Contains(RenderShipLag(rows), "gate waits") {
		t.Fatal("render broken")
	}
}

// TestE23MQServe: the multi-queue refinement scored the way E21 scored the
// PDAM. (1) Calibration: across queue geometries, the MQ closed form tracks
// raw-P thread rounds where the PDAM reading of the same geometry
// overpredicts service. (2) Live accounting: under the overcommitting
// PDAM-global scheduler the four-model accountant's read-residual p50s
// order mq < pdam < dam, with both refinements beating the DAM ≥ 2x.
// (3) Serving: the queue-aware lane scheduler matches the PDAM-global
// plateau and both beat the DAM-style scheduler ≥ 2x. (4) The dedicated
// write queue keeps read throughput under concurrent group commits at least
// at the shared-queue level.
func TestE23MQServe(t *testing.T) {
	skipUnderRace(t)
	cfg := DefaultMQServingConfig()
	cfg.Items = 30_000
	cfg.OpsPerClient = 40

	// (1) Calibration sweep.
	calib := MQCalibration(cfg)
	if len(calib) != len(cfg.SweepQueues)*len(cfg.SweepDepths) {
		t.Fatalf("calibration: %d rows", len(calib))
	}
	for _, r := range calib {
		if r.MeasuredSteps <= 0 {
			t.Fatalf("degenerate calibration row %+v", r)
		}
		// 20%: integer slot counts floor hard at small depths (slots(2) = 1
		// where the continuous value is ~1.8), so tiny geometries run a bit
		// ahead of the closed form. The single-scalar models are off by the
		// whole depth/interference factor, asserted relatively below.
		if r.MQErr > 0.20 {
			t.Errorf("Q=%d D=%d: mq closed form off by %.1f%%", r.Queues, r.Depth, 100*r.MQErr)
		}
		if r.EffP < r.RawP {
			// A real multi-queue geometry: the single-scalar readings miss.
			if r.MQErr >= r.PDAMErr {
				t.Errorf("Q=%d D=%d: mq err %.3f not below pdam err %.3f",
					r.Queues, r.Depth, r.MQErr, r.PDAMErr)
			}
			if r.DAMErr <= r.PDAMErr {
				t.Errorf("Q=%d D=%d: dam err %.3f not above pdam err %.3f",
					r.Queues, r.Depth, r.DAMErr, r.PDAMErr)
			}
		}
	}
	if !strings.Contains(RenderMQCalibration(calib), "pdam err%") {
		t.Fatal("calibration render broken")
	}

	// (2) Live residuals under the PDAM-global scheduler.
	sum, err := MQResiduals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resid := map[string]float64{}
	for _, r := range sum.Residuals {
		if r.Class == "read" && r.Count > 0 {
			resid[r.Model] = r.P50
		}
	}
	mq, pdam, dam := resid["mq"], resid["pdam"], resid["dam"]
	t.Logf("read-residual p50: mq=%.4f pdam=%.4f dam=%.4f (spans=%d)", mq, pdam, dam, sum.Spans)
	if len(resid) < 3 {
		t.Fatalf("missing read residual families: %+v", sum.Residuals)
	}
	if mq >= pdam {
		t.Errorf("mq read-residual p50 %.4f not below pdam %.4f", mq, pdam)
	}
	if dam < 2*pdam {
		t.Errorf("dam read-residual p50 %.4f not ≥ 2x pdam %.4f", dam, pdam)
	}
	if dam < 2*mq {
		t.Errorf("dam read-residual p50 %.4f not ≥ 2x mq %.4f", dam, mq)
	}

	// (3) Scheduler comparison.
	rows, err := MQServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string][]ServingRow{}
	for _, r := range rows {
		if r.Throughput <= 0 || r.Steps <= 0 {
			t.Fatalf("%s k=%d: degenerate row %+v", r.Mode, r.Clients, r)
		}
		byMode[r.Mode] = append(byMode[r.Mode], r)
	}
	lastOf := func(mode string) ServingRow {
		rs := byMode[mode]
		if len(rs) != len(cfg.Clients) {
			t.Fatalf("%s: %d rows, want %d", mode, len(rs), len(cfg.Clients))
		}
		return rs[len(rs)-1]
	}
	damRow, pdamRow, mqRow := lastOf("dam"), lastOf("pdam"), lastOf("mq-lanes")
	t.Logf("plateau gets/step: dam=%.3f pdam=%.3f mq-lanes=%.3f",
		damRow.Throughput, pdamRow.Throughput, mqRow.Throughput)
	if mqRow.Throughput < 2*damRow.Throughput || pdamRow.Throughput < 2*damRow.Throughput {
		t.Errorf("batched schedulers not ≥ 2x dam: dam=%.3f pdam=%.3f mq=%.3f",
			damRow.Throughput, pdamRow.Throughput, mqRow.Throughput)
	}
	if mqRow.Throughput < 0.85*pdamRow.Throughput {
		t.Errorf("queue-aware lanes %.3f below 0.85x pdam-global %.3f",
			mqRow.Throughput, pdamRow.Throughput)
	}
	if !strings.Contains(RenderMQServing(rows), "mq-lanes") {
		t.Fatal("serving render broken")
	}

	// (4) Write-queue isolation (deterministic device-level round).
	iso := MQWriteIsolation(cfg)
	if len(iso) != 2 || !iso[0].WriteQueue || iso[1].WriteQueue {
		t.Fatalf("isolation rows: %+v", iso)
	}
	on, off := iso[0], iso[1]
	t.Logf("write isolation reads/step: wq-on=%.3f wq-off=%.3f", on.ReadsPerStep, off.ReadsPerStep)
	if on.ReadsPerStep <= 0 || off.ReadsPerStep <= 0 || on.WriteBlocks == 0 {
		t.Fatalf("degenerate isolation rows: %+v", iso)
	}
	if on.ReadsPerStep < 1.05*off.ReadsPerStep {
		t.Errorf("dedicated write queue did not protect read throughput: on=%.3f off=%.3f",
			on.ReadsPerStep, off.ReadsPerStep)
	}
	if !strings.Contains(RenderMQIsolation(iso), "write queue") {
		t.Fatal("isolation render broken")
	}
}
