// E4 (Table 3): the node-size sensitivity of B-trees versus Bε-trees in the
// affine model, evaluated numerically from the core cost formulas across a
// node-size sweep so the "B-trees are highly sensitive, Bε-trees much less
// so" claim is visible as data.

package experiments

import (
	"iomodels/internal/core"
)

// SensitivityConfig parameterizes the Table 3 sweep.
type SensitivityConfig struct {
	Alpha  float64   // normalized bandwidth cost per 4 KiB block
	LogNM  float64   // ln(N/M)
	Fanout float64   // the general-F row's fanout
	Blocks []float64 // node sizes in 4 KiB blocks
}

// DefaultSensitivityConfig uses the 1 TB Hitachi's α from Table 2.
func DefaultSensitivityConfig() SensitivityConfig {
	return SensitivityConfig{
		Alpha:  0.0031,
		LogNM:  10,
		Fanout: 16,
		Blocks: []float64{1, 4, 16, 64, 256, 1024, 4096},
	}
}

// SensitivityPoint is Table 3 evaluated at one node size.
type SensitivityPoint struct {
	Blocks float64
	Rows   []core.Table3Row
}

// Table3Sweep evaluates the three designs across node sizes.
func Table3Sweep(cfg SensitivityConfig) []SensitivityPoint {
	var out []SensitivityPoint
	for _, b := range cfg.Blocks {
		out = append(out, SensitivityPoint{
			Blocks: b,
			Rows:   core.Table3(cfg.Alpha, b, cfg.LogNM, cfg.Fanout),
		})
	}
	return out
}

// RenderTable3 formats the symbolic rows at one representative size plus the
// sensitivity sweep.
func RenderTable3(points []SensitivityPoint) string {
	headers := []string{"B (4K blocks)"}
	for _, r := range points[0].Rows {
		headers = append(headers, r.Design+" ins", r.Design+" qry")
	}
	var cells [][]string
	for _, p := range points {
		row := []string{fmt0(p.Blocks)}
		for _, r := range p.Rows {
			row = append(row, f3(r.Insert), f3(r.Query))
		}
		cells = append(cells, row)
	}
	return RenderTable("Table 3: normalized op costs vs node size (B-tree grows ~linearly in B; Bε-tree ~√B)",
		headers, cells)
}
