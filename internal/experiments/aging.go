// E16 (§5 aging claim): "as B-trees age, their nodes get spread out across
// disk, and range-query performance degrades. This is borne out in
// practice" (citing the authors' FAST'17 work). The experiment loads a
// dictionary in key order — leaves land sequentially on disk — measures
// range-scan cost, then ages the tree with random churn (delete + reinsert
// cycles that split, merge and reallocate nodes) and measures again. The
// ratio is the aging penalty.
//
// The comparison across structures is the point: the B-tree's small leaves
// scatter quickly, while the Bε-tree's large nodes keep enough locality
// per seek that aging hurts far less — one reason BetrFS resists aging.

package experiments

import (
	"fmt"

	"iomodels/internal/betree"
	"iomodels/internal/btree"
	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/workload"
)

// AgingConfig parameterizes E16.
type AgingConfig struct {
	Items      int64
	ChurnOps   int // delete+reinsert pairs
	ScanOps    int
	ScanLen    int
	NodeBytes  int // B-tree node size
	BeNodeView int // Bε-tree node size
	Fanout     int
	CacheBytes int64
	Profile    hdd.Profile
	Spec       workload.KeySpec
	Seed       uint64
}

// DefaultAgingConfig is laptop-scale.
func DefaultAgingConfig() AgingConfig {
	return AgingConfig{
		Items:      200_000,
		ChurnOps:   150_000,
		ScanOps:    20,
		ScanLen:    2000,
		NodeBytes:  16 << 10,
		BeNodeView: 1 << 20,
		Fanout:     betree.DefaultFanout,
		CacheBytes: 4 << 20,
		Profile:    hdd.DefaultProfile(),
		Spec:       workload.DefaultSpec(),
		Seed:       31,
	}
}

// AgingRow is one structure's before/after scan cost.
type AgingRow struct {
	Structure    string
	FreshUsItem  float64 // scan µs/item right after a sequential load
	AgedUsItem   float64 // scan µs/item after churn
	AgingPenalty float64 // aged / fresh
}

// agingDict is what the harness needs from a structure.
type agingDict interface {
	Put(key, value []byte)
	Scan(lo, hi []byte, fn func(k, v []byte) bool)
	Flush()
}

// Aging runs E16 for the B-tree and the Bε-tree.
func Aging(cfg AgingConfig) []AgingRow {
	var rows []AgingRow
	run := func(name string, mk func(eng *engine.Engine) (agingDict, func(key []byte))) {
		clk := sim.New()
		eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, hdd.New(cfg.Profile, cfg.Seed), clk)
		d, del := mk(eng)
		// Sequential load: ascending keys allocate leaves in disk order.
		for id := int64(0); id < cfg.Items; id++ {
			d.Put(cfg.Spec.SequentialKey(uint64(id)), cfg.Spec.Value(uint64(id)))
		}
		d.Flush()
		fresh := agingScan(clk, cfg, d)
		// Churn: random delete + reinsert cycles.
		rng := stats.NewRNG(cfg.Seed + 5)
		for i := 0; i < cfg.ChurnOps; i++ {
			id := uint64(rng.Int63n(cfg.Items))
			del(cfg.Spec.SequentialKey(id))
			d.Put(cfg.Spec.SequentialKey(id), cfg.Spec.Value(id))
		}
		d.Flush()
		aged := agingScan(clk, cfg, d)
		rows = append(rows, AgingRow{
			Structure:    name,
			FreshUsItem:  fresh,
			AgedUsItem:   aged,
			AgingPenalty: aged / fresh,
		})
	}
	run(fmt.Sprintf("B-tree (%s nodes)", humanBytes(cfg.NodeBytes)), func(eng *engine.Engine) (agingDict, func(key []byte)) {
		t, err := btree.New(btree.Config{
			NodeBytes:     cfg.NodeBytes,
			MaxKeyBytes:   cfg.Spec.KeyBytes,
			MaxValueBytes: cfg.Spec.ValueBytes,
		}, eng)
		if err != nil {
			panic(fmt.Sprintf("experiments: aging btree: %v", err))
		}
		return t, func(k []byte) { t.Delete(k) }
	})
	run(fmt.Sprintf("Bε-tree (%s nodes)", humanBytes(cfg.BeNodeView)), func(eng *engine.Engine) (agingDict, func(key []byte)) {
		t, err := betree.New(betree.Config{
			NodeBytes:     cfg.BeNodeView,
			MaxFanout:     cfg.Fanout,
			MaxKeyBytes:   cfg.Spec.KeyBytes,
			MaxValueBytes: cfg.Spec.ValueBytes,
		}.Optimized(), eng)
		if err != nil {
			panic(fmt.Sprintf("experiments: aging betree: %v", err))
		}
		return t, func(k []byte) { t.Delete(k) }
	})
	return rows
}

// agingScan measures scan cost per item from cold cache.
func agingScan(clk *sim.Engine, cfg AgingConfig, d agingDict) float64 {
	rng := stats.NewRNG(cfg.Seed + 9)
	start := clk.Now()
	for i := 0; i < cfg.ScanOps; i++ {
		id := uint64(rng.Int63n(cfg.Items - int64(cfg.ScanLen)))
		count := 0
		d.Scan(cfg.Spec.SequentialKey(id), nil, func(k, v []byte) bool {
			count++
			return count < cfg.ScanLen
		})
	}
	total := float64(cfg.ScanOps * cfg.ScanLen)
	return (clk.Now() - start).Milliseconds() * 1000 / total
}

// RenderAging formats E16.
func RenderAging(rows []AgingRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Structure, f2(r.FreshUsItem), f2(r.AgedUsItem), f2(r.AgingPenalty)})
	}
	return RenderTable("E16 (§5 aging): sequential-load scan cost vs after random churn (penalty = aged/fresh)",
		[]string{"Structure", "fresh µs/item", "aged µs/item", "penalty"}, cells)
}
