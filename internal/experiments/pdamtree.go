// E9 (Lemma 13 / §8): concurrent query throughput of the three PDAM
// search-tree designs as the number of clients varies.
//
// k clients run random membership queries against a static tree on the
// abstract PDAM device (Definition 1). Each client gets r = P/k blocks of
// contiguous read-ahead per fetch, as §8's prefetching discussion
// prescribes. Lemma 13 predicts the vEB design matches one-block nodes at
// k = P and whole-node fetch at k = 1 — optimal at both extremes without
// knowing k.

package experiments

import (
	"sort"

	"iomodels/internal/pdamdev"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/veb"
)

// Lemma13Config parameterizes E9.
type Lemma13Config struct {
	Items            int // keys in the tree
	BlockEntries     int // B in entries
	P                int // device parallelism
	QueriesPerClient int
	Clients          []int // k values (each must divide P for exact r)
	Seed             uint64
}

// DefaultLemma13Config is laptop-scale but deep enough to separate designs.
func DefaultLemma13Config() Lemma13Config {
	return Lemma13Config{
		Items:            1 << 20,
		BlockEntries:     16,
		P:                16,
		QueriesPerClient: 200,
		Clients:          []int{1, 2, 4, 8, 16},
		Seed:             11,
	}
}

// Lemma13Row is one (design, clients) measurement.
type Lemma13Row struct {
	Design        veb.Design
	Clients       int
	StepsPerQuery float64
	Throughput    float64 // queries per time step, all clients combined
}

// pdamFetcher adapts a sim process + PDAM device to veb.Fetcher.
type pdamFetcher struct {
	dev *pdamdev.Device
	pr  *sim.Proc
}

func (f *pdamFetcher) Fetch(block int64, count int) {
	done := f.dev.Submit(f.pr.Now(), count)
	f.pr.SleepUntil(done)
}

// Lemma13 runs E9 and returns rows grouped by design then clients.
func Lemma13(cfg Lemma13Config) []Lemma13Row {
	keys := randomKeys(cfg.Items, cfg.Seed)
	var rows []Lemma13Row
	for _, design := range []veb.Design{veb.BlockNodes, veb.WholeNodeFetch, veb.VEBNodes} {
		nodeBlocks := cfg.P
		if design == veb.BlockNodes {
			nodeBlocks = 1
		}
		tree := veb.Build(veb.Config{
			BlockEntries: cfg.BlockEntries,
			NodeBlocks:   nodeBlocks,
			Design:       design,
		}, keys)
		for _, k := range cfg.Clients {
			steps := runLemma13Round(tree, keys, cfg, k)
			totalQueries := float64(k * cfg.QueriesPerClient)
			rows = append(rows, Lemma13Row{
				Design:        design,
				Clients:       k,
				StepsPerQuery: steps / float64(cfg.QueriesPerClient),
				Throughput:    totalQueries / steps,
			})
		}
	}
	return rows
}

// runLemma13Round returns the number of time steps k clients need for their
// queries.
func runLemma13Round(tree *veb.Tree, keys []uint64, cfg Lemma13Config, k int) float64 {
	eng := sim.New()
	dev := pdamdev.New(cfg.P, int64(cfg.BlockEntries)*16, sim.Millisecond)
	readAhead := cfg.P / k
	if readAhead < 1 {
		readAhead = 1
	}
	root := stats.NewRNG(cfg.Seed + uint64(k))
	var last sim.Time
	for c := 0; c < k; c++ {
		rng := root.Split(uint64(c))
		eng.Go(func(pr *sim.Proc) {
			f := &pdamFetcher{dev: dev, pr: pr}
			for q := 0; q < cfg.QueriesPerClient; q++ {
				key := keys[rng.Intn(len(keys))]
				if !tree.Contains(key, readAhead, f) {
					panic("experiments: lemma13 lost a key")
				}
			}
			if pr.Now() > last {
				last = pr.Now()
			}
		})
	}
	eng.Run()
	return last.Seconds() / sim.Millisecond.Seconds()
}

// RenderLemma13 formats E9 as a throughput table, one row per client count,
// one column pair per design.
func RenderLemma13(rows []Lemma13Row) string {
	byDesign := map[veb.Design]map[int]Lemma13Row{}
	clientsSet := map[int]bool{}
	for _, r := range rows {
		if byDesign[r.Design] == nil {
			byDesign[r.Design] = map[int]Lemma13Row{}
		}
		byDesign[r.Design][r.Clients] = r
		clientsSet[r.Clients] = true
	}
	var clients []int
	for c := range clientsSet {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	designs := []veb.Design{veb.BlockNodes, veb.WholeNodeFetch, veb.VEBNodes}
	headers := []string{"clients k"}
	for _, d := range designs {
		headers = append(headers, d.String()+" q/step", d.String()+" steps/q")
	}
	var cells [][]string
	for _, c := range clients {
		row := []string{intStr(c)}
		for _, d := range designs {
			r := byDesign[d][c]
			row = append(row, f3(r.Throughput), f2(r.StepsPerQuery))
		}
		cells = append(cells, row)
	}
	return RenderTable("E9 (Lemma 13): query throughput vs concurrency — vEB PB-nodes track the best design at every k",
		headers, cells)
}

func randomKeys(n int, seed uint64) []uint64 {
	rng := stats.NewRNG(seed)
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[rng.Uint64()] = true
	}
	keys := make([]uint64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
