// E22 (MVCC serving): snapshot point-read latency under write pressure.
// Before the MVCC refactor the server had one world view — a read admitted
// while the writer batch held the tree observed whatever the writer was in
// the middle of publishing, and every read shared the writer's locks and
// device queue. With LSN-pinned snapshots a chain-hit read is answered from
// the version layer, touching neither the batch read scheduler nor the
// state lock the writer holds during apply.
//
// The experiment measures three rounds on a fresh durable server each:
//
//	snap-idle    k readers pin snapshots, the hot set is overwritten once
//	             (so reads are chain hits), and NO writers run. This is the
//	             idle-writer baseline.
//	snap-loaded  identical, except background writer connections saturate
//	             the write path for the whole measurement window.
//	plain-loaded the same hot-key reads as ordinary Gets under the same
//	             write load: the pre-MVCC path, sharing the scheduler and
//	             the writer's state lock.
//
// The headline check is the ISSUE acceptance bound: snap-loaded p99 must
// stay within 1.5x of snap-idle p99 — write pressure must not leak into
// pinned reads — while plain-loaded shows what the shared-world-view path
// costs under the same load.

package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iomodels/internal/server"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/workload"
)

// MVCCServeConfig parameterizes E22.
type MVCCServeConfig struct {
	Items      int64
	P          int
	BlockBytes int64
	StepTime   sim.Time
	NodeBlocks int
	CacheBytes int64

	Readers      int // concurrent snapshot-reader connections
	OpsPerReader int // point reads each performs in the window
	Writers      int // background writer connections in loaded rounds
	HotKeys      int // pinned read working set, ids [0, HotKeys)

	BatchGrace time.Duration
	Spec       workload.KeySpec
	Seed       uint64
}

// DefaultMVCCServeConfig is laptop-scale but keeps the write path saturated
// for the whole read window.
func DefaultMVCCServeConfig() MVCCServeConfig {
	return MVCCServeConfig{
		Items:        20_000,
		P:            16,
		BlockBytes:   4 << 10,
		StepTime:     sim.Millisecond,
		NodeBlocks:   1,
		CacheBytes:   256 << 10,
		Readers:      4,
		OpsPerReader: 150,
		Writers:      8,
		HotKeys:      256,
		BatchGrace:   time.Millisecond,
		Spec:         workload.DefaultSpec(),
		Seed:         22,
	}
}

// MVCCServeRow is one round's measurement. ChainHitPct is the fraction of
// engine snapshot reads answered by a version chain during the window; the
// plain round reports zero because ordinary Gets never consult chains.
type MVCCServeRow struct {
	Mode        string
	Readers     int
	Writers     int
	Reads       int64
	P50Us       float64
	P99Us       float64
	ChainHitPct float64
}

// servingConfigFor adapts an E22 config to E20's server bootstrap.
func servingConfigFor(cfg MVCCServeConfig) ServingConfig {
	return ServingConfig{
		Items:      cfg.Items,
		P:          cfg.P,
		BlockBytes: cfg.BlockBytes,
		StepTime:   cfg.StepTime,
		NodeBlocks: cfg.NodeBlocks,
		CacheBytes: cfg.CacheBytes,
		Clients:    []int{cfg.Readers},
		Writers:    cfg.Writers,
		BatchGrace: cfg.BatchGrace,
		Spec:       cfg.Spec,
		Seed:       cfg.Seed,
	}
}

// MVCCServe runs E22: snap-idle, snap-loaded, plain-loaded.
func MVCCServe(cfg MVCCServeConfig) ([]MVCCServeRow, error) {
	var rows []MVCCServeRow
	for _, mode := range []string{"snap-idle", "snap-loaded", "plain-loaded"} {
		row, err := mvccServeRound(cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("E22 %s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// rewriteVal is the value the hot-set overwrite installs; pinned snapshots
// must keep reading the original load-time value underneath it.
func rewriteVal(spec workload.KeySpec, cfg MVCCServeConfig, id uint64) []byte {
	return spec.Value(uint64(cfg.Items) + id)
}

// mvccServeRound boots a fresh durable server, pins reader snapshots (snap
// modes), overwrites the hot set once, optionally saturates the write path,
// and measures the readers' point-read latency.
func mvccServeRound(cfg MVCCServeConfig, mode string) (MVCCServeRow, error) {
	snapMode := mode != "plain-loaded"
	loaded := mode != "snap-idle"

	sb, err := startServing(servingConfigFor(cfg), cfg.P, true)
	if err != nil {
		return MVCCServeRow{}, err
	}
	defer sb.srv.Close()

	// Dial the readers and, in snap modes, pin every snapshot BEFORE the
	// hot set is rewritten: the pinned view must predate the overwrite.
	readers := make([]*server.Client, cfg.Readers)
	snaps := make([]uint64, cfg.Readers)
	for i := range readers {
		cl, err := server.Dial(sb.addr)
		if err != nil {
			return MVCCServeRow{}, err
		}
		defer cl.Close()
		readers[i] = cl
		if snapMode {
			id, _, err := cl.SnapOpen()
			if err != nil {
				return MVCCServeRow{}, fmt.Errorf("snap open: %w", err)
			}
			snaps[i] = id
		}
	}

	// One overwrite pass over the hot set. With snapshots live this records
	// a version chain per hot key, so every pinned read below is a chain
	// hit; without (plain round) it just warms the same pages the readers
	// will touch, keeping cache state comparable across rounds.
	setup, err := server.Dial(sb.addr)
	if err != nil {
		return MVCCServeRow{}, err
	}
	defer setup.Close()
	for id := uint64(0); id < uint64(cfg.HotKeys); id++ {
		if err := setup.Put(cfg.Spec.Key(id), rewriteVal(cfg.Spec, cfg, id)); err != nil {
			return MVCCServeRow{}, fmt.Errorf("hot-set rewrite: %w", err)
		}
	}

	// Background write pressure: closed-loop writers hammering the non-hot
	// tail of the key space. (Not the hot set: unbounded rewrites there
	// would blow past MaxVersionsPerKey and expire the pinned snapshots —
	// that failure mode has its own test; E22 measures latency.)
	done := make(chan struct{})
	var writerWG sync.WaitGroup
	writerErrs := make([]error, cfg.Writers)
	if loaded {
		for w := 0; w < cfg.Writers; w++ {
			writerWG.Add(1)
			rng := stats.NewRNG(cfg.Seed ^ 0xE22).Split(uint64(w))
			go func(w int) {
				defer writerWG.Done()
				cl, err := server.Dial(sb.addr)
				if err != nil {
					writerErrs[w] = err
					return
				}
				defer cl.Close()
				tail := cfg.Items - int64(cfg.HotKeys)
				for {
					select {
					case <-done:
						return
					default:
					}
					id := uint64(cfg.HotKeys) + uint64(rng.Int63n(tail))
					if err := cl.Put(cfg.Spec.Key(id), cfg.Spec.Value(id^1)); err != nil {
						writerErrs[w] = err
						return
					}
				}
			}(w)
		}
	}

	before := sb.eng.MVCCStats()
	hist := stats.NewLatencyHist()
	var reads atomic.Int64
	root := stats.NewRNG(cfg.Seed)
	readErrs := make(chan error, cfg.Readers)
	var readWG sync.WaitGroup
	for i := range readers {
		readWG.Add(1)
		rng := root.Split(uint64(i))
		go func(i int) {
			defer readWG.Done()
			cl := readers[i]
			local := stats.NewLatencyHist()
			for q := 0; q < cfg.OpsPerReader; q++ {
				id := uint64(rng.Int63n(int64(cfg.HotKeys)))
				key := cfg.Spec.Key(id)
				t0 := time.Now()
				var (
					val []byte
					ok  bool
					err error
				)
				if snapMode {
					val, ok, err = cl.SnapGet(snaps[i], key)
				} else {
					val, ok, err = cl.Get(key)
				}
				if err != nil {
					readErrs <- fmt.Errorf("read id %d: %w", id, err)
					return
				}
				if !ok {
					readErrs <- fmt.Errorf("read id %d: lost key", id)
					return
				}
				local.Observe(int64(time.Since(t0)))
				// The pinned view predates the rewrite; the live view is
				// the rewrite. Either answer being wrong voids the round.
				want := rewriteVal(cfg.Spec, cfg, id)
				if snapMode {
					want = cfg.Spec.Value(id)
				}
				if !bytes.Equal(val, want) {
					readErrs <- fmt.Errorf("read id %d: stale/live mix-up: got %q want %q", id, val, want)
					return
				}
			}
			reads.Add(int64(cfg.OpsPerReader))
			hist.Merge(local)
			readErrs <- nil
		}(i)
	}
	readWG.Wait()
	close(readErrs)
	after := sb.eng.MVCCStats()

	if loaded {
		close(done)
		writerWG.Wait()
	}
	for err := range readErrs {
		if err != nil {
			return MVCCServeRow{}, err
		}
	}
	for _, err := range writerErrs {
		if err != nil {
			return MVCCServeRow{}, fmt.Errorf("background writer: %w", err)
		}
	}
	if snapMode {
		for i, cl := range readers {
			if err := cl.SnapRelease(snaps[i]); err != nil {
				return MVCCServeRow{}, fmt.Errorf("snap release: %w", err)
			}
		}
	}

	row := MVCCServeRow{
		Mode:    mode,
		Readers: cfg.Readers,
		Reads:   reads.Load(),
	}
	if loaded {
		row.Writers = cfg.Writers
	}
	snap := hist.Snapshot()
	row.P50Us = float64(snap.P50) / 1e3
	row.P99Us = float64(snap.P99) / 1e3
	dHits := after.ChainHits - before.ChainHits
	dMiss := after.ChainMisses - before.ChainMisses
	if dHits+dMiss > 0 {
		row.ChainHitPct = 100 * float64(dHits) / float64(dHits+dMiss)
	}
	return row, nil
}

// RenderMVCCServe formats E22, one row per round.
func RenderMVCCServe(rows []MVCCServeRow) string {
	headers := []string{"round", "readers", "writers", "reads", "p50 µs", "p99 µs", "chain hit%"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mode, intStr(r.Readers), intStr(r.Writers), intStr(int(r.Reads)),
			fmt0(r.P50Us), fmt0(r.P99Us), f2(r.ChainHitPct),
		})
	}
	return RenderTable("E22 (MVCC serving): snapshot point-read latency under write pressure vs the shared-world-view path",
		headers, cells)
}
