// E1 (Figure 1), E2 (Table 1), E7 (§4.1 prediction-error claim): validate
// the PDAM against the simulated SSDs.
//
// Methodology follows §4.1: p = 1, 2, 4, ..., 64 threads each read a fixed
// volume of data as 64 KiB reads at random block-aligned offsets, with one
// outstanding IO per thread; completion time of the round is recorded. The
// PDAM parallelism P and the saturation throughput ∝PB are then derived by
// flat-then-linear segmented regression, exactly as in the paper. (The
// paper reads 10 GiB per thread; the default here is scaled down — virtual
// time is noise-free, so the scale only affects host run time.)

package experiments

import (
	"iomodels/internal/core"
	"iomodels/internal/fit"
	"iomodels/internal/sim"
	"iomodels/internal/ssd"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
)

// PDAMConfig parameterizes the Figure 1 experiment.
type PDAMConfig struct {
	IOBytes      int64 // read size (paper: 64 KiB)
	PerThreadIOs int   // reads per thread (paper: 163,840 = 10 GiB)
	Threads      []int // thread counts (paper: 1..64, powers of two)
	Seed         uint64
}

// DefaultPDAMConfig returns the paper's shape at ~1/80 volume.
func DefaultPDAMConfig() PDAMConfig {
	return PDAMConfig{
		IOBytes:      64 << 10,
		PerThreadIOs: 2048, // 128 MiB per thread
		Threads:      []int{1, 2, 4, 8, 16, 32, 64},
		Seed:         1,
	}
}

// Figure1Point is one (threads, completion seconds) measurement.
type Figure1Point struct {
	Threads int
	Seconds float64
}

// Figure1Series is the Figure 1 curve for one device.
type Figure1Series struct {
	Device string
	Points []Figure1Point
}

// Figure1 runs the thread-scaling read experiment on every Table 1 SSD.
func Figure1(cfg PDAMConfig) []Figure1Series {
	var out []Figure1Series
	for _, prof := range ssd.Profiles() {
		s := Figure1Series{Device: prof.Name}
		for _, p := range cfg.Threads {
			secs := runThreadRound(prof, p, cfg)
			s.Points = append(s.Points, Figure1Point{Threads: p, Seconds: secs})
		}
		out = append(out, s)
	}
	return out
}

// runThreadRound simulates one round: p threads, each issuing
// cfg.PerThreadIOs dependent random reads; returns the completion time of
// the slowest thread in virtual seconds.
func runThreadRound(prof ssd.Profile, p int, cfg PDAMConfig) float64 {
	eng := sim.New()
	st := storage.NewStore(ssd.New(prof))
	root := stats.NewRNG(cfg.Seed + uint64(p)*1000003)
	var last sim.Time
	for i := 0; i < p; i++ {
		rng := root.Split(uint64(i))
		eng.Go(func(pr *sim.Proc) {
			for j := 0; j < cfg.PerThreadIOs; j++ {
				off := rng.Int63n((prof.Capacity()-cfg.IOBytes)/cfg.IOBytes) * cfg.IOBytes
				done := st.Meter(pr.Now(), storage.Read, off, cfg.IOBytes)
				pr.SleepUntil(done)
			}
			if pr.Now() > last {
				last = pr.Now()
			}
		})
	}
	eng.Run()
	return last.Seconds()
}

// Table1Row is one derived row of Table 1.
type Table1Row struct {
	Device  string
	P       float64 // derived parallelism (segmented-regression knee)
	SatMBps float64 // saturation throughput ∝ PB, MB/s
	R2      float64
}

// Table1 derives P and ∝PB from Figure 1 series by flat-then-linear
// segmented regression (completion time is constant below P, linear above).
func Table1(series []Figure1Series, cfg PDAMConfig) ([]Table1Row, error) {
	var rows []Table1Row
	for _, s := range series {
		var xs, ys []float64
		for _, pt := range s.Points {
			xs = append(xs, float64(pt.Threads))
			ys = append(ys, pt.Seconds)
		}
		seg, err := fit.FlatThenLinear(xs, ys)
		if err != nil {
			return nil, err
		}
		// Saturation throughput: at large p the device moves
		// p·volume / time(p) bytes/s; use the regression line at max p.
		pMax := xs[len(xs)-1]
		volume := float64(cfg.PerThreadIOs) * float64(cfg.IOBytes)
		sat := pMax * volume / seg.Eval(pMax)
		rows = append(rows, Table1Row{
			Device:  s.Device,
			P:       seg.Knee,
			SatMBps: sat / 1e6,
			R2:      seg.R2,
		})
	}
	return rows, nil
}

// RenderTable1 formats Table 1 as in the paper.
func RenderTable1(rows []Table1Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Device, f2(r.P), fmt0(r.SatMBps), f4(r.R2)})
	}
	return RenderTable("Table 1: derived PDAM parameters (cf. paper: P 2.9-5.5, ∝PB 260-2500 MB/s, R² ≥ 0.986)",
		[]string{"Device", "P", "∝PB (MB/s)", "R²"}, cells)
}

// RenderFigure1CSV emits the Figure 1 series (one column per device).
func RenderFigure1CSV(series []Figure1Series) string {
	headers := []string{"threads"}
	for _, s := range series {
		headers = append(headers, s.Device)
	}
	var rows [][]string
	for i := range series[0].Points {
		row := []string{intStr(series[0].Points[i].Threads)}
		for _, s := range series {
			row = append(row, f3(s.Points[i].Seconds))
		}
		rows = append(rows, row)
	}
	return RenderCSV(headers, rows)
}

// PredictionRow quantifies E7: how well the PDAM (knee model) and the DAM
// (serial model) predict the measured Figure 1 times.
type PredictionRow struct {
	Device        string
	PDAMMaxRelErr float64 // paper: never more than 14%
	DAMMaxOverEst float64 // paper: ~P at large thread counts
	DerivedP      float64
}

// PDAMPrediction computes E7 from measured series and derived parameters.
// The PDAM prediction uses the fitted device model: below the derived P the
// run is latency-bound at the single-thread time t1; above it the device is
// bandwidth-bound at the derived saturation throughput, so time =
// max(t1, p·volume/∝PB). The DAM, which serves one IO at a time, predicts
// time = t1·p from the same calibration.
func PDAMPrediction(series []Figure1Series, table1 []Table1Row, cfg PDAMConfig) []PredictionRow {
	volume := float64(cfg.PerThreadIOs) * float64(cfg.IOBytes)
	var out []PredictionRow
	for i, s := range series {
		t1 := s.Points[0].Seconds
		p := table1[i].P
		sat := table1[i].SatMBps * 1e6
		var measured, pdam, dam []float64
		for _, pt := range s.Points {
			measured = append(measured, pt.Seconds)
			pred := float64(pt.Threads) * volume / sat
			if pred < t1 {
				pred = t1
			}
			pdam = append(pdam, pred)
			dam = append(dam, t1*float64(pt.Threads))
		}
		worstOver := 0.0
		for j := range measured {
			if r := dam[j] / measured[j]; r > worstOver {
				worstOver = r
			}
		}
		out = append(out, PredictionRow{
			Device:        s.Device,
			PDAMMaxRelErr: core.MaxRelError(measured, pdam),
			DAMMaxOverEst: worstOver,
			DerivedP:      p,
		})
	}
	return out
}

// RenderPrediction formats E7.
func RenderPrediction(rows []PredictionRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Device, f2(r.PDAMMaxRelErr * 100), f2(r.DAMMaxOverEst), f2(r.DerivedP),
		})
	}
	return RenderTable("E7: prediction error on Figure 1 (paper: PDAM ≤14%; DAM overestimates by ≈P)",
		[]string{"Device", "PDAM max err (%)", "DAM max overestimate (x)", "derived P"}, cells)
}
