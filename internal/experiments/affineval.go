// E3 (Table 2) and E8 (§4.2 prediction-error claim): validate the affine
// model against the simulated HDDs.
//
// Methodology follows §4.2: for each IO size from one 4 KiB block up to
// 16 MiB, issue 64 reads at random block-aligned offsets across the full
// device; linear regression of mean IO time versus size yields the setup
// cost s (intercept), the bandwidth cost t (slope, per 4 KiB), α = t/s, and
// R².

package experiments

import (
	"fmt"
	"math"

	"iomodels/internal/fit"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
)

// AffineConfig parameterizes the Table 2 experiment.
type AffineConfig struct {
	Blocks []int64 // IO sizes in 4 KiB blocks (paper: 1 block .. 16 MiB)
	Rounds int     // reads per size (paper: 64)
	Seed   uint64
}

// DefaultAffineConfig matches the paper's sweep.
func DefaultAffineConfig() AffineConfig {
	return AffineConfig{
		Blocks: []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
		Rounds: 64,
		Seed:   2,
	}
}

// Table2Row is one derived row of Table 2, plus the ground truth the
// simulator was configured with so the recovery can be judged.
type Table2Row struct {
	Device  string
	Year    int
	S       float64 // fitted setup cost, seconds
	TPer4K  float64 // fitted transfer cost, seconds per 4 KiB
	Alpha   float64 // t/s
	R2      float64
	TrueS   float64
	TrueT4K float64

	// The per-size means, kept for E8.
	sizes []float64 // blocks
	means []float64 // seconds
}

// Table2 runs the IO-size sweep on every Table 2 drive and fits the affine
// parameters.
func Table2(cfg AffineConfig) ([]Table2Row, error) {
	var rows []Table2Row
	for _, prof := range hdd.Profiles() {
		st := storage.NewStore(hdd.New(prof, cfg.Seed))
		rng := stats.NewRNG(cfg.Seed + 77)
		var now sim.Time
		var xs, ys []float64
		for _, blocks := range cfg.Blocks {
			size := blocks * 4096
			start := now
			for i := 0; i < cfg.Rounds; i++ {
				off := rng.Int63n((prof.Capacity()-size)/4096) * 4096
				now = st.Meter(now, storage.Read, off, size)
			}
			xs = append(xs, float64(blocks))
			ys = append(ys, (now-start).Seconds()/float64(cfg.Rounds))
		}
		line, err := fit.Linear(xs, ys)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Device:  prof.Name,
			Year:    prof.Year,
			S:       line.Intercept,
			TPer4K:  line.Slope,
			Alpha:   line.Slope / line.Intercept,
			R2:      line.R2,
			TrueS:   prof.ExpectedSetup().Seconds(),
			TrueT4K: prof.ExpectedTransferPer4K(),
			sizes:   xs,
			means:   ys,
		})
	}
	return rows, nil
}

// RenderTable2 formats Table 2 as in the paper.
func RenderTable2(rows []Table2Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%s (%d)", r.Device, r.Year),
			f3(r.S), f6(r.TPer4K), f4(r.Alpha), f4(r.R2),
			f3(r.TrueS), f6(r.TrueT4K),
		})
	}
	return RenderTable("Table 2: derived affine parameters (cf. paper: s 0.012-0.018, t 2.1e-5..4.1e-5, R² ≥ 0.9972)",
		[]string{"Disk", "s (s)", "t (s/4K)", "α", "R²", "true s", "true t"}, cells)
}

// RenderTable2CSV emits the per-size series underlying Table 2.
func RenderTable2CSV(rows []Table2Row) string {
	headers := []string{"blocks_4k"}
	for _, r := range rows {
		headers = append(headers, fmt.Sprintf("%s (%d)", r.Device, r.Year))
	}
	var cells [][]string
	for i := range rows[0].sizes {
		row := []string{fmt.Sprintf("%.0f", rows[0].sizes[i])}
		for _, r := range rows {
			row = append(row, f6(r.means[i]))
		}
		cells = append(cells, row)
	}
	return RenderCSV(headers, cells)
}

// AffinePredictionRow quantifies E8 for one drive: the affine fit's maximum
// relative error across IO sizes (paper: within 25%), and the worst-case
// ratio between the DAM estimate (unit-cost blocks at the half-bandwidth
// point, Lemma 1) and the measurement (paper: up to 2x).
type AffinePredictionRow struct {
	Device       string
	AffineMaxErr float64
	DAMMaxRatio  float64
}

// AffinePrediction computes E8 from the Table 2 sweep.
func AffinePrediction(rows []Table2Row) []AffinePredictionRow {
	var out []AffinePredictionRow
	for _, r := range rows {
		var affineErr, damRatio float64
		hbBlocks := r.S / r.TPer4K // half-bandwidth point in 4 KiB blocks
		for i, b := range r.sizes {
			measured := r.means[i]
			affine := r.S + r.TPer4K*b
			if e := math.Abs(affine-measured) / measured; e > affineErr {
				affineErr = e
			}
			// Lemma 1 DAM: blocks of hbBlocks, each costing 2s.
			dam := math.Ceil(b/hbBlocks) * 2 * r.S
			ratio := dam / measured
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio > damRatio {
				damRatio = ratio
			}
		}
		out = append(out, AffinePredictionRow{Device: r.Device, AffineMaxErr: affineErr, DAMMaxRatio: damRatio})
	}
	return out
}

// RenderAffinePrediction formats E8.
func RenderAffinePrediction(rows []AffinePredictionRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Device, f2(r.AffineMaxErr * 100), f2(r.DAMMaxRatio)})
	}
	return RenderTable("E8: prediction error on the IO-size sweep (paper: affine ≤25%; DAM off by up to 2x)",
		[]string{"Disk", "affine max err (%)", "DAM max ratio (x)"}, cells)
}
