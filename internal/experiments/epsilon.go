// E18 (§3 / Theorem 4): the ε spectrum. The Bε-tree's fanout F = Bε+1
// interpolates between a buffered repository tree (ε→0: fanout 2, fastest
// inserts, slowest queries) and a B-tree (ε→1: fanout B, slowest inserts,
// fastest queries). Theorem 4 promises inserts a factor εB^(1-ε) faster
// than a B-tree at only a 1/ε query penalty. This experiment sweeps F at a
// fixed node size and measures both sides of the tradeoff; TokuDB's
// F ∈ [10,20] sits near the sweet spot.

package experiments

import (
	"fmt"

	"iomodels/internal/betree"
	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/workload"
)

// EpsilonConfig parameterizes E18.
type EpsilonConfig struct {
	Items      int64
	QueryOps   int
	InsertOps  int
	NodeBytes  int
	Fanouts    []int
	CacheBytes int64
	Profile    hdd.Profile
	Spec       workload.KeySpec
	Seed       uint64
}

// DefaultEpsilonConfig sweeps fanout 2..64 at 1 MiB nodes.
func DefaultEpsilonConfig() EpsilonConfig {
	return EpsilonConfig{
		Items:      300_000,
		QueryOps:   200,
		InsertOps:  20_000,
		NodeBytes:  1 << 20,
		Fanouts:    []int{2, 4, 8, 16, 32, 64},
		CacheBytes: 8 << 20,
		Profile:    hdd.DefaultProfile(),
		Spec:       workload.DefaultSpec(),
		Seed:       41,
	}
}

// EpsilonRow is one fanout's measurement.
type EpsilonRow struct {
	Fanout   int
	Epsilon  float64
	InsertMs float64
	QueryMs  float64
	Height   int
}

// EpsilonSweep runs E18.
func EpsilonSweep(cfg EpsilonConfig) []EpsilonRow {
	var rows []EpsilonRow
	for _, f := range cfg.Fanouts {
		bcfg := betree.Config{
			NodeBytes:     cfg.NodeBytes,
			MaxFanout:     f,
			MaxKeyBytes:   cfg.Spec.KeyBytes,
			MaxValueBytes: cfg.Spec.ValueBytes,
		}.Optimized()
		clk := sim.New()
		eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, hdd.New(cfg.Profile, cfg.Seed), clk)
		tree, err := betree.New(bcfg, eng)
		if err != nil {
			panic(fmt.Sprintf("experiments: epsilon sweep F=%d: %v", f, err))
		}
		workload.Load(tree, cfg.Spec, cfg.Items)
		tree.Flush()

		queryMs := measurePhase(clk, cfg.QueryOps, func(i int) {
			id := uint64(int64(i*2654435761) % cfg.Items)
			tree.Get(cfg.Spec.Key(id))
		}, nil)
		insertMs := measurePhase(clk, cfg.InsertOps, func(i int) {
			id := uint64(cfg.Items + int64(i))
			tree.Put(cfg.Spec.Key(id), cfg.Spec.Value(id))
		}, tree.Flush)

		rows = append(rows, EpsilonRow{
			Fanout:   f,
			Epsilon:  bcfg.Epsilon(cfg.Spec.KeyBytes + cfg.Spec.ValueBytes + 8),
			InsertMs: insertMs,
			QueryMs:  queryMs,
			Height:   tree.Height(),
		})
	}
	return rows
}

// RenderEpsilon formats E18.
func RenderEpsilon(rows []EpsilonRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			intStr(r.Fanout), f2(r.Epsilon), f3(r.InsertMs), f3(r.QueryMs), intStr(r.Height),
		})
	}
	return RenderTable("E18 (Theorem 4): the ε spectrum — fanout trades insert cost against query cost",
		[]string{"F", "ε", "insert ms/op", "query ms/op", "height"}, cells)
}
