// E20 (serving / §8 applied): the Lemma 13 effect measured through the full
// network stack. A kvserve instance fronts a B-tree on the abstract PDAM
// device; k closed-loop TCP clients run random gets. The server's read
// scheduler admits reads in device-parallelism-sized batches, so aggregate
// throughput in device time steps should grow ~linearly in k up to ~P and
// then plateau — while the same server configured with batch size 1 (the
// DAM-style scheduler, which assumes one IO per step is all a device can do)
// stays flat at ~1/h queries per step no matter how many clients arrive.
//
// A second phase measures group commit: concurrent writer connections must
// share WAL flushes (flushes < records), where a single closed-loop writer
// pays exactly one flush per write.

package experiments

import (
	"fmt"
	"sync"
	"time"

	"iomodels/internal/btree"
	"iomodels/internal/engine"
	"iomodels/internal/pdamdev"
	"iomodels/internal/server"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/workload"
)

// ServingConfig parameterizes E20.
type ServingConfig struct {
	Items      int64
	P          int      // device parallelism (IO slots per step)
	BlockBytes int64    // B, the PDAM IO size
	StepTime   sim.Time // wall-clock length of one step
	NodeBlocks int      // B-tree node size in blocks
	CacheBytes int64    // engine budget (keep << data so gets hit disk)

	OpsPerClient int
	Clients      []int         // k values for the read phase
	BatchGrace   time.Duration // real-time wait for partial batches

	Writers         int // concurrent writer connections (group-commit phase)
	WritesPerWriter int

	Spec workload.KeySpec
	Seed uint64
}

// DefaultServingConfig is laptop-scale but IO-bound.
func DefaultServingConfig() ServingConfig {
	return ServingConfig{
		Items:           60_000,
		P:               16,
		BlockBytes:      4 << 10,
		StepTime:        sim.Millisecond,
		NodeBlocks:      1,
		CacheBytes:      512 << 10,
		OpsPerClient:    60,
		Clients:         []int{1, 2, 4, 8, 16},
		BatchGrace:      time.Millisecond,
		Writers:         32,
		WritesPerWriter: 20,
		Spec:            workload.DefaultSpec(),
		Seed:            20,
	}
}

// ServingRow is one (scheduler mode, clients) measurement of the read phase.
// Steps and Throughput are virtual device time; the latency percentiles are
// wall-clock as seen by the TCP clients.
type ServingRow struct {
	Mode       string // "dam" (batch=1) or "pdam" (batch=P)
	Clients    int
	Steps      float64
	Throughput float64 // gets per device step, all clients combined
	HitRatio   float64
	P50Us      float64
	P99Us      float64
}

// ServingCommitRow is one write-phase measurement: WAL flushes consumed by a
// fixed number of acknowledged writes.
type ServingCommitRow struct {
	Writers  int
	Records  int64
	Commits  int64
	PerFlush float64 // records / commits; 1.0 means no commit sharing
}

// servingBackend is one live kvserve instance for the experiment.
type servingBackend struct {
	srv   *server.Server
	addr  string
	clock *engine.SharedClock
	eng   *engine.Engine
}

// startServing boots a B-tree server on a fresh PDAM device with the given
// read-batch size. The read queue is sized for the largest client count so
// admission control never sheds experiment load.
func startServing(cfg ServingConfig, batch int, durable bool) (*servingBackend, error) {
	dev := pdamdev.New(cfg.P, cfg.BlockBytes, cfg.StepTime)
	eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, dev.Storage(1<<31), sim.New())
	if durable {
		if err := eng.EnableDurability(engine.DurabilityConfig{
			LogBytes:     16 << 20,
			GroupBytes:   1 << 20, // flush sharing must come from group commit, not size
			JournalBytes: 8 << 20,
		}); err != nil {
			return nil, err
		}
	}
	tree, err := btree.New(btree.Config{
		NodeBytes:     cfg.NodeBlocks * int(cfg.BlockBytes),
		MaxKeyBytes:   cfg.Spec.KeyBytes,
		MaxValueBytes: cfg.Spec.ValueBytes,
	}, eng)
	if err != nil {
		return nil, err
	}
	var writer engine.Dictionary = tree
	if durable {
		d, err := eng.Durable("bt", tree)
		if err != nil {
			return nil, err
		}
		writer = d
	}
	workload.Load(writer, cfg.Spec, cfg.Items)
	tree.Flush()
	if durable {
		if err := eng.Sync(); err != nil {
			return nil, err
		}
	}
	maxK := cfg.Writers
	for _, k := range cfg.Clients {
		if k > maxK {
			maxK = k
		}
	}
	clock := engine.NewSharedClock()
	eng.AdoptSharedClock(clock)
	srv, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		BatchIOs:   batch,
		BatchGrace: cfg.BatchGrace,
		ReadQueue:  4 * maxK,
	}, server.Backend{
		Eng:   eng,
		Clock: clock,
		NewSession: func(c *engine.Client) engine.Dictionary {
			return tree.Session(c)
		},
		Writer: writer,
	})
	if err != nil {
		return nil, err
	}
	addr, err := srv.ListenAndServe()
	if err != nil {
		return nil, err
	}
	return &servingBackend{srv: srv, addr: addr.String(), clock: clock, eng: eng}, nil
}

// Serving runs E20 and returns read-phase rows (dam mode first, then pdam)
// and write-phase rows (serial writer first, then concurrent).
func Serving(cfg ServingConfig) ([]ServingRow, []ServingCommitRow, error) {
	var rows []ServingRow
	for _, mode := range []struct {
		name  string
		batch int
	}{{"dam", 1}, {"pdam", cfg.P}} {
		sb, err := startServing(cfg, mode.batch, false)
		if err != nil {
			return nil, nil, err
		}
		for _, k := range cfg.Clients {
			row, err := servingReadRound(sb, cfg, mode.name, k)
			if err != nil {
				sb.srv.Close()
				return nil, nil, err
			}
			rows = append(rows, row)
		}
		sb.srv.Close()
	}

	var commits []ServingCommitRow
	total := cfg.Writers * cfg.WritesPerWriter
	for _, writers := range []int{1, cfg.Writers} {
		row, err := servingWriteRound(cfg, writers, total)
		if err != nil {
			return nil, nil, err
		}
		commits = append(commits, row)
	}
	return rows, commits, nil
}

// servingReadRound cold-starts the cache and measures k closed-loop TCP
// clients doing random gets, in device steps and wall-clock latency.
func servingReadRound(sb *servingBackend, cfg ServingConfig, mode string, k int) (ServingRow, error) {
	sb.eng.Pager().EvictAll(sb.eng.Owner())
	sb.eng.Pager().ResetStats()
	root := stats.NewRNG(cfg.Seed + uint64(k))
	start := sb.clock.Now()
	hist := stats.NewLatencyHist()
	errs := make(chan error, k)
	var wg sync.WaitGroup
	for c := 0; c < k; c++ {
		wg.Add(1)
		rng := root.Split(uint64(c))
		go func() {
			defer wg.Done()
			cl, err := server.Dial(sb.addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			local := stats.NewLatencyHist()
			for q := 0; q < cfg.OpsPerClient; q++ {
				key := cfg.Spec.Key(uint64(rng.Int63n(cfg.Items)))
				t0 := time.Now()
				_, ok, err := cl.Get(key)
				if err != nil {
					errs <- fmt.Errorf("serving get: %w", err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("serving: lost key %q", key)
					return
				}
				local.Observe(int64(time.Since(t0)))
			}
			hist.Merge(local)
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return ServingRow{}, err
		}
	}
	steps := float64(sb.clock.Now()-start) / float64(cfg.StepTime)
	snap := hist.Snapshot()
	return ServingRow{
		Mode:       mode,
		Clients:    k,
		Steps:      steps,
		Throughput: float64(k*cfg.OpsPerClient) / steps,
		HitRatio:   sb.eng.Pager().Stats().HitRatio(),
		P50Us:      float64(snap.P50) / 1e3,
		P99Us:      float64(snap.P99) / 1e3,
	}, nil
}

// servingWriteRound boots a durable server and pushes `total` puts through
// `writers` closed-loop connections, returning the WAL flush accounting.
func servingWriteRound(cfg ServingConfig, writers, total int) (ServingCommitRow, error) {
	sb, err := startServing(cfg, cfg.P, true)
	if err != nil {
		return ServingCommitRow{}, err
	}
	defer sb.srv.Close()
	before := sb.eng.DurabilityStats()
	per := total / writers
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := server.Dial(sb.addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < per; i++ {
				id := uint64(cfg.Items) + uint64(w*per+i)
				if err := cl.Put(cfg.Spec.Key(id), cfg.Spec.Value(id)); err != nil {
					errs <- fmt.Errorf("serving put: %w", err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return ServingCommitRow{}, err
		}
	}
	after := sb.eng.DurabilityStats()
	row := ServingCommitRow{
		Writers: writers,
		Records: after.LogRecords - before.LogRecords,
		Commits: after.LogCommits - before.LogCommits,
	}
	if row.Commits > 0 {
		row.PerFlush = float64(row.Records) / float64(row.Commits)
	}
	return row, nil
}

// RenderServing formats the read phase, one row per (mode, clients).
func RenderServing(rows []ServingRow) string {
	headers := []string{"scheduler", "clients k", "steps", "gets/step", "hit%", "p50 µs", "p99 µs"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Mode, intStr(r.Clients), fmt0(r.Steps), f3(r.Throughput),
			f2(r.HitRatio * 100), fmt0(r.P50Us), fmt0(r.P99Us),
		})
	}
	return RenderTable("E20 (serving): closed-loop TCP gets per device step — batch-of-P scheduler vs DAM-style batch-of-1",
		headers, cells)
}

// RenderServingCommit formats the write phase.
func RenderServingCommit(rows []ServingCommitRow) string {
	headers := []string{"writers", "records", "WAL flushes", "writes/flush"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			intStr(r.Writers), intStr(int(r.Records)), intStr(int(r.Commits)), f2(r.PerFlush),
		})
	}
	return RenderTable("E20 (group commit): WAL flushes per acknowledged write",
		headers, cells)
}
