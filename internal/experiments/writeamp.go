// E12 (Lemma 3 / Theorem 4(4)): measured write amplification of the three
// dictionary families under a random update stream.
//
// The B-tree rewrites a whole node per O(1) modified entries, so its
// amplification is Θ(B/entry) — linear in the node size, the paper's first
// explanation of why B-tree nodes stay small. The Bε-tree pays
// O(F·log_F(N/M)) and the leveled LSM pays O(growth · levels), both
// insensitive to node size. Amplification is measured from the simulated
// disk's byte counters, not modeled.

package experiments

import (
	"fmt"

	"iomodels/internal/betree"
	"iomodels/internal/btree"
	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/lsm"
	"iomodels/internal/sim"
	"iomodels/internal/workload"
)

// WriteAmpConfig parameterizes E12.
type WriteAmpConfig struct {
	Items      int64
	CacheBytes int64
	NodeSizes  []int // sweep for the trees
	Fanout     int
	Profile    hdd.Profile
	Spec       workload.KeySpec
	Seed       uint64
}

// DefaultWriteAmpConfig is laptop-scale.
func DefaultWriteAmpConfig() WriteAmpConfig {
	return WriteAmpConfig{
		Items:      120_000,
		CacheBytes: 2 << 20,
		NodeSizes:  []int{64 << 10, 256 << 10, 1 << 20},
		Fanout:     betree.DefaultFanout,
		Profile:    hdd.DefaultProfile(),
		Spec:       workload.DefaultSpec(),
		Seed:       5,
	}
}

// WriteAmpRow is one measurement.
type WriteAmpRow struct {
	Structure string
	NodeBytes int
	WriteAmp  float64 // disk bytes written / logical bytes inserted
	ModelAmp  float64 // the Θ-bound evaluated with constants = 1 (shape only)
}

// WriteAmp measures write amplification across structures and node sizes.
func WriteAmp(cfg WriteAmpConfig) []WriteAmpRow {
	var rows []WriteAmpRow
	entry := float64(cfg.Spec.KeyBytes + cfg.Spec.ValueBytes + 8)
	for _, nb := range cfg.NodeSizes {
		// B-tree.
		{
			clk := sim.New()
			eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, hdd.New(cfg.Profile, cfg.Seed), clk)
			tree, err := btree.New(btree.Config{
				NodeBytes:     nb,
				MaxKeyBytes:   cfg.Spec.KeyBytes,
				MaxValueBytes: cfg.Spec.ValueBytes,
			}, eng)
			if err != nil {
				panic(fmt.Sprintf("experiments: writeamp btree: %v", err))
			}
			workload.Load(tree, cfg.Spec, cfg.Items)
			tree.Flush()
			c := eng.Counters()
			rows = append(rows, WriteAmpRow{
				Structure: "B-tree",
				NodeBytes: nb,
				WriteAmp:  float64(c.BytesWritten) / float64(tree.LogicalBytesInserted),
				ModelAmp:  float64(nb) / entry,
			})
		}
		// Bε-tree (Theorem 9 organization).
		{
			clk := sim.New()
			eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, hdd.New(cfg.Profile, cfg.Seed), clk)
			tree, err := betree.New(betree.Config{
				NodeBytes:     nb,
				MaxFanout:     cfg.Fanout,
				MaxKeyBytes:   cfg.Spec.KeyBytes,
				MaxValueBytes: cfg.Spec.ValueBytes,
			}.Optimized(), eng)
			if err != nil {
				panic(fmt.Sprintf("experiments: writeamp betree: %v", err))
			}
			workload.Load(tree, cfg.Spec, cfg.Items)
			tree.Settle()
			tree.Flush()
			c := eng.Counters()
			h := float64(tree.Height() - 1)
			if h < 1 {
				h = 1
			}
			rows = append(rows, WriteAmpRow{
				Structure: "Bε-tree",
				NodeBytes: nb,
				WriteAmp:  float64(c.BytesWritten) / float64(tree.LogicalBytesInserted),
				ModelAmp:  float64(cfg.Fanout) * h,
			})
		}
	}
	// LSM (node size not applicable; one row).
	{
		clk := sim.New()
		eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes}, hdd.New(cfg.Profile, cfg.Seed), clk)
		lcfg := lsm.DefaultConfig()
		lcfg.MemtableBytes = int(cfg.CacheBytes / 4)
		tree, err := lsm.New(lcfg, eng)
		if err != nil {
			panic(fmt.Sprintf("experiments: writeamp lsm: %v", err))
		}
		workload.Load(tree, cfg.Spec, cfg.Items)
		tree.Flush()
		c := eng.Counters()
		rows = append(rows, WriteAmpRow{
			Structure: "LSM-tree",
			NodeBytes: lcfg.SSTableBytes,
			WriteAmp:  float64(c.BytesWritten) / float64(tree.LogicalBytesInserted),
			ModelAmp:  float64(lcfg.GrowthFactor) * float64(tree.Levels()),
		})
	}
	return rows
}

// RenderWriteAmp formats E12.
func RenderWriteAmp(rows []WriteAmpRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Structure, humanBytes(r.NodeBytes), f2(r.WriteAmp), f2(r.ModelAmp),
		})
	}
	return RenderTable("E12: write amplification under random inserts (B-tree ~Θ(B/entry); Bε-tree ~F·height; LSM ~growth·levels)",
		[]string{"Structure", "Node/SSTable", "measured WA", "Θ-bound shape"}, cells)
}
