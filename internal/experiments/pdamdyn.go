// E9-dynamic (Lemma 13 / §8, extended): concurrent query throughput of the
// REAL dictionaries — the disk-backed B-tree and Bε-tree — on the abstract
// PDAM device, rather than the static vEB search trees of the original
// experiment.
//
// k clients run random membership queries against a pre-loaded tree through
// the shared storage engine: each client is a sim process with its own
// virtual timeline, so its block fetches overlap with other clients' on the
// device's P IO slots per step. Lemma 13's shape must reproduce with a
// dynamic dictionary: aggregate throughput grows ~linearly in k until the
// device saturates at ~P/h queries per step (h = dependent IOs per query),
// and never decreases.

package experiments

import (
	"fmt"
	"sort"

	"iomodels/internal/betree"
	"iomodels/internal/btree"
	"iomodels/internal/engine"
	"iomodels/internal/pdamdev"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/workload"
)

// Lemma13DynamicConfig parameterizes the dynamic-dictionary E9 extension.
type Lemma13DynamicConfig struct {
	Items            int64
	P                int      // device parallelism (IO slots per step)
	BlockBytes       int64    // B, the PDAM IO size
	StepTime         sim.Time // wall-clock length of one step
	BTreeNodeBlocks  int      // B-tree node size in blocks
	BeTreeNodeBlocks int      // Bε-tree node size in blocks
	CacheBytes       int64    // engine budget (keep << data so queries hit disk)
	QueriesPerClient int
	Clients          []int // k values
	Spec             workload.KeySpec
	Seed             uint64
}

// DefaultLemma13DynamicConfig is laptop-scale but IO-bound.
func DefaultLemma13DynamicConfig() Lemma13DynamicConfig {
	return Lemma13DynamicConfig{
		Items:            120_000,
		P:                16,
		BlockBytes:       4 << 10,
		StepTime:         sim.Millisecond,
		BTreeNodeBlocks:  1,
		BeTreeNodeBlocks: 16,
		CacheBytes:       1 << 20,
		QueriesPerClient: 150,
		Clients:          []int{1, 2, 4, 8, 16},
		Spec:             workload.DefaultSpec(),
		Seed:             17,
	}
}

// Lemma13DynamicRow is one (structure, clients) measurement.
type Lemma13DynamicRow struct {
	Tree          string
	Clients       int
	StepsPerQuery float64 // per-client latency in steps
	Throughput    float64 // queries per step, all clients combined
	HitRatio      float64 // pager hit ratio during the round
}

// dynTree builds one dictionary on an engine and hands out per-client
// sessions.
type dynTree struct {
	name  string
	build func(eng *engine.Engine) func(c *engine.Client) engine.Dictionary
}

func (cfg Lemma13DynamicConfig) trees() []dynTree {
	return []dynTree{
		{
			name: "B-tree",
			build: func(eng *engine.Engine) func(c *engine.Client) engine.Dictionary {
				tree, err := btree.New(btree.Config{
					NodeBytes:     cfg.BTreeNodeBlocks * int(cfg.BlockBytes),
					MaxKeyBytes:   cfg.Spec.KeyBytes,
					MaxValueBytes: cfg.Spec.ValueBytes,
				}, eng)
				if err != nil {
					panic(fmt.Sprintf("experiments: lemma13 dynamic btree: %v", err))
				}
				workload.Load(tree, cfg.Spec, cfg.Items)
				tree.Flush()
				return func(c *engine.Client) engine.Dictionary { return tree.Session(c) }
			},
		},
		{
			name: "Bε-tree",
			build: func(eng *engine.Engine) func(c *engine.Client) engine.Dictionary {
				tree, err := betree.New(betree.Config{
					NodeBytes:     cfg.BeTreeNodeBlocks * int(cfg.BlockBytes),
					MaxFanout:     betree.DefaultFanout,
					MaxKeyBytes:   cfg.Spec.KeyBytes,
					MaxValueBytes: cfg.Spec.ValueBytes,
				}.Optimized(), eng)
				if err != nil {
					panic(fmt.Sprintf("experiments: lemma13 dynamic betree: %v", err))
				}
				workload.Load(tree, cfg.Spec, cfg.Items)
				tree.Settle()
				tree.Flush()
				return func(c *engine.Client) engine.Dictionary { return tree.Session(c) }
			},
		},
	}
}

// Lemma13Dynamic runs the extended E9 and returns rows grouped by structure
// then clients.
func Lemma13Dynamic(cfg Lemma13DynamicConfig) []Lemma13DynamicRow {
	var rows []Lemma13DynamicRow
	for _, tr := range cfg.trees() {
		clk := sim.New()
		dev := pdamdev.New(cfg.P, cfg.BlockBytes, cfg.StepTime)
		eng := engine.New(engine.Config{CacheBytes: cfg.CacheBytes},
			dev.Storage(1<<31), clk)
		session := tr.build(eng)
		for _, k := range cfg.Clients {
			steps := runDynamicRound(clk, eng, session, cfg, k)
			total := float64(k * cfg.QueriesPerClient)
			rows = append(rows, Lemma13DynamicRow{
				Tree:          tr.name,
				Clients:       k,
				StepsPerQuery: steps / float64(cfg.QueriesPerClient),
				Throughput:    total / steps,
				HitRatio:      eng.Pager().Stats().HitRatio(),
			})
		}
	}
	return rows
}

// runDynamicRound cold-starts the cache and measures how many time steps k
// concurrent clients need for their queries.
func runDynamicRound(clk *sim.Engine, eng *engine.Engine,
	session func(c *engine.Client) engine.Dictionary, cfg Lemma13DynamicConfig, k int) float64 {
	eng.Pager().EvictAll(eng.Owner())
	eng.Pager().ResetStats()
	root := stats.NewRNG(cfg.Seed + uint64(k))
	start := clk.Now()
	for c := 0; c < k; c++ {
		rng := root.Split(uint64(c))
		clk.Go(func(pr *sim.Proc) {
			s := session(eng.Process(pr))
			for q := 0; q < cfg.QueriesPerClient; q++ {
				id := uint64(rng.Int63n(cfg.Items))
				if _, ok := s.Get(cfg.Spec.Key(id)); !ok {
					panic("experiments: lemma13 dynamic lost a key")
				}
			}
		})
	}
	clk.Run()
	return float64(clk.Now()-start) / float64(cfg.StepTime)
}

// RenderLemma13Dynamic formats the extended E9 as a throughput table, one
// row per client count, one column group per structure.
func RenderLemma13Dynamic(rows []Lemma13DynamicRow) string {
	byTree := map[string]map[int]Lemma13DynamicRow{}
	var trees []string
	clientsSet := map[int]bool{}
	for _, r := range rows {
		if byTree[r.Tree] == nil {
			byTree[r.Tree] = map[int]Lemma13DynamicRow{}
			trees = append(trees, r.Tree)
		}
		byTree[r.Tree][r.Clients] = r
		clientsSet[r.Clients] = true
	}
	var clients []int
	for c := range clientsSet {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	headers := []string{"clients k"}
	for _, tr := range trees {
		headers = append(headers, tr+" q/step", tr+" steps/q", tr+" hit%")
	}
	var cells [][]string
	for _, c := range clients {
		row := []string{intStr(c)}
		for _, tr := range trees {
			r := byTree[tr][c]
			row = append(row, f3(r.Throughput), f2(r.StepsPerQuery), f2(r.HitRatio*100))
		}
		cells = append(cells, row)
	}
	return RenderTable("E9-dynamic (Lemma 13 on real dictionaries): query throughput vs concurrency — saturation ∝ PB",
		headers, cells)
}
