// E17 (§3 read/write asymmetry): "with some storage technologies (e.g.,
// NVMe) writes are more expensive than reads, and this has algorithmic
// consequences" — the motivation the paper gives for tracking write
// amplification separately. This experiment repeats the Figure 1
// methodology with writes and derives the write-side PDAM parameters: flash
// programs are slower than reads, so the write saturation bandwidth ∝PB_w
// sits well below the read side's while the parallelism structure stays.

package experiments

import (
	"iomodels/internal/sim"
	"iomodels/internal/ssd"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
)

// AsymmetryRow contrasts one device's read and write PDAM parameters.
type AsymmetryRow struct {
	Device       string
	ReadSatMBps  float64
	WriteSatMBps float64
	Ratio        float64 // read/write saturation
	ReadP        float64
	WriteP       float64
}

// Asymmetry runs the thread-scaling experiment in both directions.
func Asymmetry(cfg PDAMConfig) ([]AsymmetryRow, error) {
	readSeries := Figure1(cfg)
	readRows, err := Table1(readSeries, cfg)
	if err != nil {
		return nil, err
	}
	var out []AsymmetryRow
	for i, prof := range ssd.Profiles() {
		ws := writeSeries(prof, cfg)
		wrow, err := Table1([]Figure1Series{ws}, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AsymmetryRow{
			Device:       prof.Name,
			ReadSatMBps:  readRows[i].SatMBps,
			WriteSatMBps: wrow[0].SatMBps,
			Ratio:        readRows[i].SatMBps / wrow[0].SatMBps,
			ReadP:        readRows[i].P,
			WriteP:       wrow[0].P,
		})
	}
	return out, nil
}

// writeSeries mirrors runThreadRound with write IOs.
func writeSeries(prof ssd.Profile, cfg PDAMConfig) Figure1Series {
	s := Figure1Series{Device: prof.Name}
	for _, p := range cfg.Threads {
		eng := sim.New()
		st := storage.NewStore(ssd.New(prof))
		root := stats.NewRNG(cfg.Seed + uint64(p)*7777777)
		var last sim.Time
		for i := 0; i < p; i++ {
			rng := root.Split(uint64(i))
			eng.Go(func(pr *sim.Proc) {
				for j := 0; j < cfg.PerThreadIOs; j++ {
					off := rng.Int63n((prof.Capacity()-cfg.IOBytes)/cfg.IOBytes) * cfg.IOBytes
					done := st.Meter(pr.Now(), storage.Write, off, cfg.IOBytes)
					pr.SleepUntil(done)
				}
				if pr.Now() > last {
					last = pr.Now()
				}
			})
		}
		eng.Run()
		s.Points = append(s.Points, Figure1Point{Threads: p, Seconds: last.Seconds()})
	}
	return s
}

// RenderAsymmetry formats E17.
func RenderAsymmetry(rows []AsymmetryRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Device, fmt0(r.ReadSatMBps), fmt0(r.WriteSatMBps), f2(r.Ratio), f2(r.ReadP), f2(r.WriteP),
		})
	}
	return RenderTable("E17 (§3 asymmetry): flash programs are slower than reads; PB_write ≪ PB_read",
		[]string{"Device", "read ∝PB (MB/s)", "write ∝PB (MB/s)", "ratio", "read P", "write P"}, cells)
}
