// Package experiments contains one harness per table and figure of the
// paper's evaluation, plus the §4 prediction-error claims and the §6/§8
// design experiments. Each harness runs real workloads on the simulated
// devices and returns structured results; cmd/ tools render them as the
// aligned text tables and CSV series the paper plots. DESIGN.md's
// per-experiment index maps experiment IDs (E1..E12) to these functions.
package experiments

import (
	"fmt"
	"strings"
)

// RenderTable formats rows as an aligned text table.
func RenderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// RenderCSV formats rows as CSV (no quoting needed: cells are numbers and
// simple names).
func RenderCSV(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func fmt0(v float64) string { return fmt.Sprintf("%.0f", v) }

func intStr(v int) string { return fmt.Sprintf("%d", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }

// humanBytes renders a byte count like the paper's axis labels.
func humanBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
