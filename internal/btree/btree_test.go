package btree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
)

func newTestTree(t *testing.T, nodeBytes int, cacheBytes int64) *Tree {
	t.Helper()
	clk := sim.New()
	eng := engine.New(engine.Config{CacheBytes: cacheBytes, Shards: 1},
		hdd.NewDeterministic(hdd.DefaultProfile()), clk)
	tree, err := New(Config{
		NodeBytes:     nodeBytes,
		MaxKeyBytes:   32,
		MaxValueBytes: 128,
	}, eng)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestEmptyTree(t *testing.T) {
	tree := newTestTree(t, 4096, 1<<20)
	if _, ok := tree.Get(key(1)); ok {
		t.Fatal("found key in empty tree")
	}
	if tree.Items() != 0 || tree.Height() != 1 || tree.Nodes() != 1 {
		t.Fatalf("items=%d height=%d nodes=%d", tree.Items(), tree.Height(), tree.Nodes())
	}
	if !tree.Delete(key(1)) == false {
		t.Fatal("deleted from empty tree")
	}
}

func TestPutGetSmall(t *testing.T) {
	tree := newTestTree(t, 4096, 1<<20)
	for i := 0; i < 100; i++ {
		tree.Put(key(i), value(i))
	}
	for i := 0; i < 100; i++ {
		v, ok := tree.Get(key(i))
		if !ok || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if tree.Items() != 100 {
		t.Fatalf("items = %d", tree.Items())
	}
}

func TestOverwrite(t *testing.T) {
	tree := newTestTree(t, 4096, 1<<20)
	tree.Put(key(1), []byte("a"))
	tree.Put(key(1), []byte("bb"))
	v, ok := tree.Get(key(1))
	if !ok || string(v) != "bb" {
		t.Fatalf("got %q", v)
	}
	if tree.Items() != 1 {
		t.Fatalf("items = %d", tree.Items())
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	tree := newTestTree(t, 1024, 1<<20)
	for i := 0; i < 2000; i++ {
		tree.Put(key(i), value(i))
	}
	if tree.Height() < 3 {
		t.Fatalf("height = %d after 2000 inserts into 1KiB nodes", tree.Height())
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, ok := tree.Get(key(i)); !ok {
			t.Fatalf("lost key %d after splits", i)
		}
	}
}

func TestDeleteAndMerge(t *testing.T) {
	tree := newTestTree(t, 1024, 1<<20)
	const n = 1500
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	nodesBefore := tree.Nodes()
	for i := 0; i < n; i += 2 {
		if !tree.Delete(key(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tree.Delete(key(0)) {
		t.Fatal("double delete succeeded")
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, ok := tree.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	if tree.Items() != n/2 {
		t.Fatalf("items = %d", tree.Items())
	}
	// Delete everything: tree must shrink back to a single node.
	for i := 1; i < n; i += 2 {
		tree.Delete(key(i))
	}
	if tree.Items() != 0 {
		t.Fatalf("items = %d after deleting all", tree.Items())
	}
	if tree.Nodes() >= nodesBefore {
		t.Fatalf("no node reclamation: %d -> %d", nodesBefore, tree.Nodes())
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	tree := newTestTree(t, 2048, 1<<20)
	for i := 0; i < 500; i++ {
		tree.Put(key(i), value(i))
	}
	var got []string
	tree.Scan(key(100), key(110), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 {
		t.Fatalf("scan returned %d keys: %v", len(got), got)
	}
	for i, k := range got {
		if k != string(key(100+i)) {
			t.Fatalf("scan[%d] = %s", i, k)
		}
	}
}

func TestScanEarlyStopAndScanN(t *testing.T) {
	tree := newTestTree(t, 2048, 1<<20)
	for i := 0; i < 300; i++ {
		tree.Put(key(i), value(i))
	}
	count := 0
	tree.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop at %d", count)
	}
	ents := tree.ScanN(key(50), 5)
	if len(ents) != 5 || string(ents[0].Key) != string(key(50)) {
		t.Fatalf("ScanN = %v", ents)
	}
}

func TestSmallCacheEviction(t *testing.T) {
	// Cache holds only a few nodes: every operation round-trips through the
	// simulated disk, exercising serialization.
	tree := newTestTree(t, 1024, 8192)
	const n = 1200
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	for i := 0; i < n; i++ {
		v, ok := tree.Get(key(i))
		if !ok || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) failed after eviction", i)
		}
	}
	st := tree.pager().Stats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("cache never spilled: %+v", st)
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIOChargesTime(t *testing.T) {
	tree := newTestTree(t, 4096, 16384)
	clk := tree.eng.Clock()
	rng := stats.NewRNG(77)
	perm := rng.Perm(2000)
	for _, i := range perm {
		tree.Put(key(i), value(i))
	}
	if clk.Now() == 0 {
		t.Fatal("no virtual time passed despite evictions")
	}
	c := tree.eng.Counters()
	if c.Writes == 0 || c.Reads == 0 {
		t.Fatalf("counters = %+v", c)
	}
	// Every IO is exactly one node.
	if c.BytesRead%4096 != 0 || c.BytesWritten%4096 != 0 {
		t.Fatalf("non-node-sized IO: %+v", c)
	}
}

// TestRandomOpsAgainstModel drives the tree with a random stream of puts,
// deletes and gets, mirrored into a map, checking full agreement and
// structural invariants along the way.
func TestRandomOpsAgainstModel(t *testing.T) {
	tree := newTestTree(t, 1024, 64<<10)
	model := map[string]string{}
	rng := stats.NewRNG(2024)
	const ops = 30000
	for i := 0; i < ops; i++ {
		id := int(rng.Intn(2000))
		k := key(id)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // put
			v := fmt.Sprintf("v%d-%d", id, i)
			tree.Put(k, []byte(v))
			model[string(k)] = v
		case 5, 6: // delete
			_, inModel := model[string(k)]
			got := tree.Delete(k)
			if got != inModel {
				t.Fatalf("op %d: Delete(%d) = %v, model %v", i, id, got, inModel)
			}
			delete(model, string(k))
		default: // get
			v, ok := tree.Get(k)
			mv, mok := model[string(k)]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("op %d: Get(%d) = %q,%v; model %q,%v", i, id, v, ok, mv, mok)
			}
		}
		if i%5000 == 4999 {
			if err := tree.Check(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if tree.Items() != len(model) {
				t.Fatalf("op %d: items %d != model %d", i, tree.Items(), len(model))
			}
		}
	}
	// Full scan must equal the sorted model.
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	var gotKeys []string
	tree.Scan(nil, nil, func(k, v []byte) bool {
		gotKeys = append(gotKeys, string(k))
		if model[string(k)] != string(v) {
			t.Fatalf("scan value mismatch at %s", k)
		}
		return true
	})
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("scan length %d != model %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("scan[%d] = %s, want %s", i, gotKeys[i], wantKeys[i])
		}
	}
}

func TestVariableSizedValues(t *testing.T) {
	tree := newTestTree(t, 2048, 1<<20)
	rng := stats.NewRNG(5)
	sizes := map[int]int{}
	for i := 0; i < 800; i++ {
		id := int(rng.Intn(300))
		sz := int(rng.Intn(128))
		v := bytes.Repeat([]byte{byte(id)}, sz)
		tree.Put(key(id), v)
		sizes[id] = sz
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	for id, sz := range sizes {
		v, ok := tree.Get(key(id))
		if !ok || len(v) != sz {
			t.Fatalf("Get(%d) len %d, want %d", id, len(v), sz)
		}
	}
}

func TestFlushPersistsEverything(t *testing.T) {
	tree := newTestTree(t, 1024, 1<<20)
	for i := 0; i < 500; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	// Evict the whole cache; subsequent reads must come from disk intact.
	tree.pager().EvictAll(tree.owner)
	for i := 0; i < 500; i++ {
		v, ok := tree.Get(key(i))
		if !ok || !bytes.Equal(v, value(i)) {
			t.Fatalf("lost key %d across flush+evict", i)
		}
	}
}

func TestTornWriteDetected(t *testing.T) {
	tree := newTestTree(t, 1024, 1<<20)
	for i := 0; i < 200; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	tree.pager().EvictAll(tree.owner)
	// Corrupt the count field in the header of the node at extent 0 (the
	// CRC covers the payload, so header corruption must be caught).
	var buf [1]byte
	tree.owner.ReadAt(buf[:], 1)
	buf[0] ^= 0xFF
	tree.owner.WriteAt(buf[:], 1)
	defer func() {
		if recover() == nil {
			t.Fatal("corrupted node was accepted")
		}
	}()
	for i := 0; i < 200; i++ {
		tree.Get(key(i))
	}
}

func TestConfigValidation(t *testing.T) {
	clk := sim.New()
	eng := engine.New(engine.Config{CacheBytes: 1 << 20},
		hdd.NewDeterministic(hdd.DefaultProfile()), clk)
	if _, err := New(Config{NodeBytes: 64, MaxKeyBytes: 32, MaxValueBytes: 128}, eng); err == nil {
		t.Fatal("tiny node accepted")
	}
	if _, err := New(Config{}, eng); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestKeyValidation(t *testing.T) {
	tree := newTestTree(t, 4096, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.Put(nil, []byte("v"))
}
