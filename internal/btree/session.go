package btree

import "iomodels/internal/engine"

// Tree and Session both implement the engine's common dictionary
// interface.
var (
	_ engine.Dictionary     = (*Tree)(nil)
	_ engine.Dictionary     = (*Session)(nil)
	_ engine.SnapshotReader = (*Session)(nil)
)

// Stats implements engine.Dictionary.
func (t *Tree) Stats() engine.Stats {
	return engine.Stats{Items: t.items, IO: t.eng.Counters(), Pager: t.pager().Stats()}
}

// Session is one client's handle onto a shared tree: reads (Get/Scan) run
// in the client's own virtual timeline through the shared pager, so k
// sessions on k sim processes overlap their IOs on the device. Mutations
// are delegated to the tree's single-writer owner client and must not run
// concurrently with other operations.
type Session struct {
	t *Tree
	c *engine.Client
}

// Session creates a client-bound view of the tree.
func (t *Tree) Session(c *engine.Client) *Session { return &Session{t: t, c: c} }

// Client returns the session's engine client.
func (s *Session) Client() *engine.Client { return s.c }

// Get returns the value for key, charging IO to the session's client.
func (s *Session) Get(key []byte) ([]byte, bool) { return s.t.getKey(s.c, key) }

// Scan visits [lo, hi) in order, charging IO to the session's client.
func (s *Session) Scan(lo, hi []byte, fn func(key, value []byte) bool) {
	s.t.scan(s.c, s.t.root, lo, hi, fn)
}

// GetAt reads key as of sn's pinned LSN: versions recorded in the engine's
// chains resolve in memory, unchanged keys fall through to the session's
// ordinary read path (whose current answer is the snapshot answer).
func (s *Session) GetAt(sn *engine.Snap, key []byte) ([]byte, bool, error) {
	return sn.Get(s, key)
}

// ScanAt visits [lo, hi) in order as of sn's pinned LSN: the session's scan
// stream merged with the snapshot's version overlay (see engine.Snap.Scan).
func (s *Session) ScanAt(sn *engine.Snap, lo, hi []byte, fn func(key, value []byte) bool) error {
	return sn.Scan(s, lo, hi, fn)
}

// Put delegates to the tree's single-writer path.
func (s *Session) Put(key, value []byte) { s.t.Put(key, value) }

// Delete delegates to the tree's single-writer path.
func (s *Session) Delete(key []byte) bool { return s.t.Delete(key) }

// Stats reports the shared tree's stats.
func (s *Session) Stats() engine.Stats { return s.t.Stats() }
