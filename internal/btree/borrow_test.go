package btree

import (
	"bytes"
	"fmt"
	"testing"
)

// Direct unit tests of the borrow rotations: fixSparseChild prefers merging
// and right-siblings, so the left-borrow and internal-rotation paths need
// crafted node shapes.

func borrowFixture(t *testing.T) *Tree {
	t.Helper()
	return newTestTree(t, 1024, 1<<20)
}

func leafWith(ids ...int) *node {
	n := newLeaf()
	for _, id := range ids {
		n.insertEntry(key(id), bytes.Repeat([]byte{byte(id)}, 60))
	}
	return n
}

func internalWith(children []int64, pivotIDs ...int) *node {
	n := newInternal()
	n.children = append(n.children, children...)
	for _, id := range pivotIDs {
		n.pivots = append(n.pivots, key(id))
	}
	n.size = n.computeSize()
	return n
}

func TestBorrowFromLeftLeaf(t *testing.T) {
	tree := borrowFixture(t)
	sib := leafWith(10, 11, 12, 13, 14, 15)
	child := leafWith(20)
	parent := internalWith([]int64{0, 1024}, 20)

	tree.borrowFromLeft(parent, 1, child, sib)

	if child.size < tree.minBytes() {
		t.Fatalf("child still sparse: %d < %d", child.size, tree.minBytes())
	}
	// The parent pivot must equal the child's new first key.
	if !bytes.Equal(parent.pivots[0], child.entries[0].Key) {
		t.Fatalf("pivot %q != child first key %q", parent.pivots[0], child.entries[0].Key)
	}
	// Order preserved across the boundary.
	if kvCompare(sib.entries[len(sib.entries)-1].Key, child.entries[0].Key) >= 0 {
		t.Fatal("rotation broke key order")
	}
	if sib.size != sib.computeSize() || child.size != child.computeSize() || parent.size != parent.computeSize() {
		t.Fatal("size accounting broken")
	}
}

func TestBorrowFromRightLeaf(t *testing.T) {
	tree := borrowFixture(t)
	child := leafWith(1)
	sib := leafWith(10, 11, 12, 13, 14, 15)
	parent := internalWith([]int64{0, 1024}, 10)

	tree.borrowFromRight(parent, 0, child, sib)

	if child.size < tree.minBytes() {
		t.Fatalf("child still sparse: %d", child.size)
	}
	if !bytes.Equal(parent.pivots[0], sib.entries[0].Key) {
		t.Fatalf("pivot %q != sibling first key %q", parent.pivots[0], sib.entries[0].Key)
	}
	if kvCompare(child.entries[len(child.entries)-1].Key, sib.entries[0].Key) >= 0 {
		t.Fatal("rotation broke key order")
	}
}

func TestBorrowFromLeftInternal(t *testing.T) {
	tree := borrowFixture(t)
	// Left sibling fat enough in bytes (12 children), sparse child with 2.
	sib := internalWith([]int64{0, 1, 2, 3, 4, 5, 8, 9, 11, 12, 13, 5},
		10, 20, 30, 31, 32, 33, 34, 35, 36, 40, 50)
	child := internalWith([]int64{6, 7}, 70)
	parent := internalWith([]int64{100, 200}, 60)

	tree.borrowFromLeft(parent, 1, child, sib)

	if len(child.children) <= 2 {
		t.Fatal("no children rotated")
	}
	if len(child.children)+len(sib.children) != 14 {
		t.Fatal("children lost or duplicated")
	}
	if len(sib.pivots) != len(sib.children)-1 || len(child.pivots) != len(child.children)-1 {
		t.Fatal("pivot/children arity broken")
	}
	// Strict ordering across the boundary: every sib pivot < parent pivot
	// < every child pivot.
	for _, pv := range sib.pivots {
		if kvCompare(pv, parent.pivots[0]) >= 0 {
			t.Fatalf("sib pivot %q not below parent pivot %q", pv, parent.pivots[0])
		}
	}
	for _, pv := range child.pivots {
		if kvCompare(pv, parent.pivots[0]) <= 0 {
			t.Fatalf("child pivot %q not above parent pivot %q", pv, parent.pivots[0])
		}
	}
	if sib.size != sib.computeSize() || child.size != child.computeSize() {
		t.Fatal("size accounting broken")
	}
}

func TestBorrowFromRightInternal(t *testing.T) {
	tree := borrowFixture(t)
	child := internalWith([]int64{0, 1}, 10)
	sib := internalWith([]int64{2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14},
		30, 40, 50, 60, 70, 71, 72, 73, 74, 75, 76)
	parent := internalWith([]int64{100, 200}, 20)

	tree.borrowFromRight(parent, 0, child, sib)

	if len(child.children) <= 2 {
		t.Fatal("no children rotated")
	}
	if len(child.children)+len(sib.children) != 14 {
		t.Fatal("children lost or duplicated")
	}
	if len(sib.pivots) != len(sib.children)-1 || len(child.pivots) != len(child.children)-1 {
		t.Fatal("pivot/children arity broken")
	}
	for _, pv := range child.pivots {
		if kvCompare(pv, parent.pivots[0]) >= 0 {
			t.Fatalf("child pivot %q not below parent pivot %q", pv, parent.pivots[0])
		}
	}
	for _, pv := range sib.pivots {
		if kvCompare(pv, parent.pivots[0]) <= 0 {
			t.Fatalf("sib pivot %q not above parent pivot %q", pv, parent.pivots[0])
		}
	}
}

func TestBorrowGuardsAgainstEmptySibling(t *testing.T) {
	tree := borrowFixture(t)
	// A sibling with one entry must not be drained to empty.
	sib := leafWith(10)
	sib.size = tree.minBytes() + 1000 // lie about size to force the loop in
	child := leafWith(20)
	parent := internalWith([]int64{0, 1024}, 20)
	tree.borrowFromLeft(parent, 1, child, sib)
	if len(sib.entries) != 1 {
		t.Fatal("guard failed: sibling drained")
	}
	tree.borrowFromRight(parent, 0, child, leafWithSize(tree, 1))
}

// leafWithSize builds a one-entry leaf with an inflated size for guard
// tests.
func leafWithSize(tree *Tree, id int) *node {
	n := leafWith(id)
	n.size = tree.minBytes() + 1000
	return n
}

// TestDeleteStormEndToEnd drives the real delete path hard enough to hit
// the rebalancing branches with natural shapes: clustered deletes against
// skewed leaf sizes.
func TestDeleteStormEndToEnd(t *testing.T) {
	tree := newTestTree(t, 1024, 1<<20)
	// Skew: dense small values low, sparse large values high.
	for i := 0; i < 800; i++ {
		tree.Put(key(i), bytes.Repeat([]byte{1}, 10))
	}
	for i := 800; i < 1000; i++ {
		tree.Put(key(i), bytes.Repeat([]byte{2}, 120))
	}
	// Delete the high range back-to-front so the LAST child keeps going
	// sparse while its left siblings stay fat.
	for i := 999; i >= 700; i-- {
		if !tree.Delete(key(i)) {
			t.Fatalf("delete %d failed", i)
		}
		if i%37 == 0 {
			if err := tree.Check(); err != nil {
				t.Fatalf("at %d: %v", i, err)
			}
		}
	}
	for i := 0; i < 700; i++ {
		if _, ok := tree.Get(key(i)); !ok {
			t.Fatalf("lost key %d", i)
		}
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func kvCompare(a, b []byte) int { return bytes.Compare(a, b) }

var _ = fmt.Sprintf
