// Package btree implements a disk-backed B-tree with a configurable node
// size, standing in for BerkeleyDB in the paper's node-size experiments
// (§5, §7, Figure 2).
//
// The tree is the classic design (Bayer & McCreight; Comer): a balanced
// search tree with fat nodes of B bytes, keys-and-values in the leaves,
// pivots-and-children in internal nodes, all leaves at the same depth.
// Splits and merges are bounded by serialized byte size, so the node-size
// knob changes real IO sizes against the simulated device. Single-pass
// preemptive splitting (on insert) and preemptive borrowing/merging (on
// delete) keep the code iterative and the cache pinning discipline simple.
package btree

import (
	"fmt"

	"iomodels/internal/engine"
	"iomodels/internal/kv"
)

// Config shapes a tree.
type Config struct {
	// NodeBytes is the extent size of every node: the paper's B.
	NodeBytes int
	// MaxKeyBytes and MaxValueBytes bound a single entry so that splits can
	// always make room for one more.
	MaxKeyBytes   int
	MaxValueBytes int
}

func (c Config) maxEntryBytes() int {
	return kv.EncodedEntrySize(make([]byte, c.MaxKeyBytes), nil) + c.MaxValueBytes
}

func (c Config) maxPivotBytes() int { return 4 + c.MaxKeyBytes + childRefBytes }

func (c Config) validate() error {
	if c.NodeBytes <= 0 || c.MaxKeyBytes <= 0 || c.MaxValueBytes < 0 {
		return fmt.Errorf("btree: non-positive config field")
	}
	if c.NodeBytes < baseNodeBytes+4*c.maxEntryBytes() {
		return fmt.Errorf("btree: NodeBytes %d too small for 4 max-size entries (%d)", c.NodeBytes, c.maxEntryBytes())
	}
	if c.NodeBytes < baseNodeBytes+4*c.maxPivotBytes() {
		return fmt.Errorf("btree: NodeBytes %d too small for 4 max-size pivots", c.NodeBytes)
	}
	return nil
}

// Tree is a disk-backed B-tree on an engine. Mutations are single-writer
// (they run on the engine's owner client); concurrent sim processes read
// through per-client Sessions, sharing nodes via the engine's pager.
type Tree struct {
	cfg    Config
	eng    *engine.Engine
	owner  *engine.Client
	root   int64
	height int // levels including root; 1 = root is a leaf
	items  int
	nodes  int
	// LogicalBytesInserted accumulates the payload bytes of Put calls; write
	// amplification is disk bytes written divided by this.
	LogicalBytesInserted int64
}

// New creates an empty tree on eng.
func New(cfg Config, eng *engine.Engine) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, eng: eng, owner: eng.Owner()}
	root := newLeaf()
	t.root = t.allocNode()
	t.height = 1
	t.pager().Put(t.owner, (*loader)(t), engine.PageID(t.root), root, int64(root.size))
	t.pager().Unpin(t.owner, engine.PageID(t.root))
	return t, nil
}

func (t *Tree) pager() *engine.Pager { return t.eng.Pager() }

// loader adapts Tree to engine.Loader.
type loader Tree

// Load implements engine.Loader: one IO of exactly NodeBytes, charged to
// the requesting client.
func (l *loader) Load(c *engine.Client, id engine.PageID) (interface{}, int64) {
	t := (*Tree)(l)
	buf := make([]byte, t.cfg.NodeBytes)
	c.ReadAt(buf, int64(id))
	n, err := decodeNode(buf)
	if err != nil {
		panic(fmt.Sprintf("btree: load of node at %d: %v", id, err))
	}
	return n, int64(n.size)
}

// Store implements engine.Loader: one IO of exactly NodeBytes.
func (l *loader) Store(c *engine.Client, id engine.PageID, obj interface{}) {
	t := (*Tree)(l)
	n := obj.(*node)
	c.WriteAt(n.encode(t.cfg.NodeBytes), int64(id))
}

// StoreSize implements engine.StoreSizer: nodes always encode to the full
// configured node size, however few entries they hold.
func (l *loader) StoreSize(interface{}) int64 {
	return int64((*Tree)(l).cfg.NodeBytes)
}

func (t *Tree) allocNode() int64 {
	t.nodes++
	return t.eng.Alloc(int64(t.cfg.NodeBytes))
}

func (t *Tree) freeNode(off int64) {
	t.nodes--
	t.pager().Drop(t.owner, engine.PageID(off))
	t.eng.Free(off, int64(t.cfg.NodeBytes))
}

// getc pins and returns the node at off on behalf of client c.
func (t *Tree) getc(c *engine.Client, off int64) *node {
	return t.pager().Get(c, (*loader)(t), engine.PageID(off)).(*node)
}

func (t *Tree) unpinc(c *engine.Client, off int64) { t.pager().Unpin(c, engine.PageID(off)) }

// get/unpin/dirty are the owner-client shorthands the single-writer
// mutation path uses.
func (t *Tree) get(off int64) *node { return t.getc(t.owner, off) }

func (t *Tree) unpin(off int64) { t.unpinc(t.owner, off) }

func (t *Tree) dirty(off int64, n *node) {
	t.pager().MarkDirty(t.owner, engine.PageID(off), int64(n.size))
}

// Items returns the number of live keys.
func (t *Tree) Items() int { return t.items }

// Height returns the number of levels (1 = the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Nodes returns the number of live nodes.
func (t *Tree) Nodes() int { return t.nodes }

// Engine returns the engine the tree lives on.
func (t *Tree) Engine() *engine.Engine { return t.eng }

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Flush writes all dirty nodes back to disk.
func (t *Tree) Flush() { t.pager().Flush(t.owner) }

func (t *Tree) checkKV(key, value []byte) {
	if len(key) == 0 || len(key) > t.cfg.MaxKeyBytes {
		panic(fmt.Sprintf("btree: key length %d outside (0,%d]", len(key), t.cfg.MaxKeyBytes))
	}
	if len(value) > t.cfg.MaxValueBytes {
		panic(fmt.Sprintf("btree: value length %d exceeds %d", len(value), t.cfg.MaxValueBytes))
	}
}

// Get returns the value for key.
func (t *Tree) Get(key []byte) ([]byte, bool) { return t.getKey(t.owner, key) }

func (t *Tree) getKey(c *engine.Client, key []byte) ([]byte, bool) {
	off := t.root
	n := t.getc(c, off)
	for !n.leaf {
		child := n.children[n.findChild(key)]
		t.unpinc(c, off)
		off = child
		n = t.getc(c, off)
	}
	i, found := n.findEntry(key)
	var val []byte
	if found {
		val = n.entries[i].Value
	}
	t.unpinc(c, off)
	return val, found
}

// leafFull reports whether a leaf cannot be guaranteed to absorb one more
// max-size entry.
func (t *Tree) leafFull(n *node) bool {
	return n.size+t.cfg.maxEntryBytes() > t.cfg.NodeBytes
}

// internalFull reports whether an internal node cannot absorb one more
// pivot+child (which a child split underneath it would add).
func (t *Tree) internalFull(n *node) bool {
	return n.size+t.cfg.maxPivotBytes() > t.cfg.NodeBytes
}

func (t *Tree) full(n *node) bool {
	if n.leaf {
		return t.leafFull(n)
	}
	return t.internalFull(n)
}

// Put inserts or replaces key.
func (t *Tree) Put(key, value []byte) {
	t.checkKV(key, value)
	t.LogicalBytesInserted += int64(len(key) + len(value))
	rootOff := t.root
	root := t.get(rootOff)
	if t.full(root) {
		// Grow the tree: new root with the old root as its only child.
		newRoot := newInternal()
		newRoot.children = []int64{rootOff}
		newRoot.size += childRefBytes
		newOff := t.allocNode()
		t.pager().Put(t.owner, (*loader)(t), engine.PageID(newOff), newRoot, int64(newRoot.size))
		t.splitChild(newOff, newRoot, 0, rootOff, root)
		t.unpin(rootOff)
		t.root = newOff
		t.height++
		rootOff, root = newOff, newRoot
	}
	t.insertNonFull(rootOff, root, key, value)
}

// insertNonFull descends from a pinned, non-full node, splitting full
// children ahead of the descent. It consumes (unpins) the node.
func (t *Tree) insertNonFull(off int64, n *node, key, value []byte) {
	for !n.leaf {
		i := n.findChild(key)
		childOff := n.children[i]
		child := t.get(childOff)
		if t.full(child) {
			t.splitChild(off, n, i, childOff, child)
			// The split may have redirected key to the new right sibling.
			if j := n.findChild(key); j != i {
				t.unpin(childOff)
				childOff = n.children[j]
				child = t.get(childOff)
			}
		}
		t.unpin(off)
		off, n = childOff, child
	}
	_, existed := n.findEntry(key)
	n.insertEntry(key, value)
	if !existed {
		t.items++
	}
	t.dirty(off, n)
	t.unpin(off)
}

// splitChild splits the pinned child (at parent index i) into two, promoting
// a pivot into the pinned parent. Both nodes stay pinned; the new right
// sibling is unpinned before return.
func (t *Tree) splitChild(parentOff int64, parent *node, i int, childOff int64, child *node) {
	right, pivot := t.splitNode(child)
	rightOff := t.allocNode()

	parent.children = append(parent.children, 0)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = rightOff
	parent.pivots = append(parent.pivots, nil)
	copy(parent.pivots[i+1:], parent.pivots[i:])
	parent.pivots[i] = pivot
	parent.size += childRefBytes + 4 + len(pivot)

	t.pager().Put(t.owner, (*loader)(t), engine.PageID(rightOff), right, int64(right.size))
	t.pager().Unpin(t.owner, engine.PageID(rightOff))
	t.dirty(parentOff, parent)
	t.dirty(childOff, child)
}

// splitNode moves the upper half (by bytes) of n into a fresh right sibling
// and returns it with the separating pivot. Keys >= pivot live in the right
// node.
func (t *Tree) splitNode(n *node) (*node, []byte) {
	if n.leaf {
		half := n.size / 2
		acc := baseNodeBytes
		cut := 0
		for acc < half && cut < len(n.entries)-1 {
			acc += n.entries[cut].Size()
			cut++
		}
		if cut == 0 {
			cut = 1
		}
		right := newLeaf()
		right.entries = append(right.entries, n.entries[cut:]...)
		for _, e := range right.entries {
			right.size += e.Size()
		}
		n.entries = n.entries[:cut:cut]
		n.size = n.computeSize()
		pivot := append([]byte(nil), right.entries[0].Key...)
		return right, pivot
	}
	if len(n.children) < 4 {
		panic("btree: splitting internal node with fewer than 4 children")
	}
	// Split at a child boundary nearest half the bytes; child m goes left of
	// the promoted pivots[m].
	half := n.size / 2
	acc := baseNodeBytes + childRefBytes // child 0
	m := 0
	for acc < half && m < len(n.children)-3 {
		acc += 4 + len(n.pivots[m]) + childRefBytes
		m++
	}
	if m == 0 {
		m = 1
	}
	pivot := n.pivots[m]
	right := newInternal()
	right.children = append(right.children, n.children[m+1:]...)
	right.pivots = append(right.pivots, n.pivots[m+1:]...)
	right.size = right.computeSize()
	n.children = n.children[: m+1 : m+1]
	n.pivots = n.pivots[:m:m]
	n.size = n.computeSize()
	return right, pivot
}

// minBytes is the sparseness threshold for preemptive rebalancing on
// delete: nodes are kept at least a quarter full so merges always fit.
func (t *Tree) minBytes() int { return t.cfg.NodeBytes / 4 }

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key []byte) bool {
	off := t.root
	n := t.get(off)
	for !n.leaf {
		i := n.findChild(key)
		childOff, child := t.fixSparseChild(off, n, i, key)
		// Root collapse: fixSparseChild may have merged the root's only
		// remaining children.
		if off == t.root && !n.leaf && len(n.children) == 1 {
			only := n.children[0]
			t.unpin(off)
			t.freeNode(off)
			t.root = only
			t.height--
		} else {
			t.unpin(off)
		}
		off, n = childOff, child
	}
	removed := n.removeEntry(key)
	if removed {
		t.items--
		t.dirty(off, n)
	}
	t.unpin(off)
	return removed
}

// fixSparseChild ensures the child of parent covering key is at least
// minBytes before descent, borrowing from or merging with a sibling.
// It returns the (possibly different) pinned child to descend into.
func (t *Tree) fixSparseChild(parentOff int64, parent *node, i int, key []byte) (int64, *node) {
	childOff := parent.children[i]
	child := t.get(childOff)
	if child.size >= t.minBytes() || len(parent.children) == 1 {
		return childOff, child
	}
	// Prefer the right sibling; fall back to the left.
	if i+1 < len(parent.children) {
		sibOff := parent.children[i+1]
		sib := t.get(sibOff)
		if child.size+sib.size-baseNodeBytes+t.pivotCost(parent.pivots[i]) <= t.mergeLimit() {
			t.mergeChildren(parentOff, parent, i, childOff, child, sibOff, sib)
			return childOff, child
		}
		t.borrowFromRight(parent, i, child, sib)
		t.dirty(parentOff, parent)
		t.dirty(childOff, child)
		t.dirty(sibOff, sib)
		t.unpin(sibOff)
		return childOff, child
	}
	sibOff := parent.children[i-1]
	sib := t.get(sibOff)
	if child.size+sib.size-baseNodeBytes+t.pivotCost(parent.pivots[i-1]) <= t.mergeLimit() {
		// Merge child into the left sibling and descend into the sibling.
		t.mergeChildren(parentOff, parent, i-1, sibOff, sib, childOff, child)
		return sibOff, sib
	}
	t.borrowFromLeft(parent, i, child, sib)
	t.dirty(parentOff, parent)
	t.dirty(childOff, child)
	t.dirty(sibOff, sib)
	t.unpin(sibOff)
	return childOff, child
}

func (t *Tree) pivotCost(p []byte) int { return 4 + len(p) }

// mergeLimit leaves room so a merged node is not immediately full.
func (t *Tree) mergeLimit() int {
	return t.cfg.NodeBytes - t.cfg.maxEntryBytes() - t.cfg.maxPivotBytes()
}

// mergeChildren folds the pinned right node into the pinned left node and
// removes pivot i from the parent. The right node is freed and unpinned.
func (t *Tree) mergeChildren(parentOff int64, parent *node, i int, leftOff int64, left *node, rightOff int64, right *node) {
	if left.leaf != right.leaf {
		panic("btree: merging nodes of different kinds")
	}
	if left.leaf {
		left.entries = append(left.entries, right.entries...)
	} else {
		left.pivots = append(left.pivots, parent.pivots[i])
		left.pivots = append(left.pivots, right.pivots...)
		left.children = append(left.children, right.children...)
	}
	left.size = left.computeSize()
	parent.size -= childRefBytes + t.pivotCost(parent.pivots[i])
	parent.pivots = append(parent.pivots[:i], parent.pivots[i+1:]...)
	parent.children = append(parent.children[:i+1], parent.children[i+2:]...)
	t.dirty(parentOff, parent)
	t.dirty(leftOff, left)
	t.unpin(rightOff)
	t.freeNode(rightOff)
}

// borrowFromRight moves items from the right sibling (parent index i+1)
// into child (parent index i) until child reaches minBytes.
func (t *Tree) borrowFromRight(parent *node, i int, child, sib *node) {
	for child.size < t.minBytes() && sib.size > t.minBytes() {
		if child.leaf {
			if len(sib.entries) <= 1 {
				return
			}
			e := sib.entries[0]
			sib.entries = sib.entries[1:]
			sib.size -= e.Size()
			child.entries = append(child.entries, e)
			child.size += e.Size()
			parent.size += len(sib.entries[0].Key) - len(parent.pivots[i])
			parent.pivots[i] = append([]byte(nil), sib.entries[0].Key...)
		} else {
			if len(sib.children) <= 2 {
				return
			}
			// Rotate through the parent pivot.
			moved := sib.children[0]
			newPivot := sib.pivots[0]
			sib.children = sib.children[1:]
			sib.pivots = sib.pivots[1:]
			sib.size -= childRefBytes + t.pivotCost(newPivot)
			child.children = append(child.children, moved)
			child.pivots = append(child.pivots, parent.pivots[i])
			child.size += childRefBytes + t.pivotCost(parent.pivots[i])
			parent.size += len(newPivot) - len(parent.pivots[i])
			parent.pivots[i] = newPivot
		}
	}
}

// borrowFromLeft moves items from the left sibling (parent index i-1) into
// child (parent index i) until child reaches minBytes.
func (t *Tree) borrowFromLeft(parent *node, i int, child, sib *node) {
	for child.size < t.minBytes() && sib.size > t.minBytes() {
		if child.leaf {
			if len(sib.entries) <= 1 {
				return
			}
			e := sib.entries[len(sib.entries)-1]
			sib.entries = sib.entries[:len(sib.entries)-1]
			sib.size -= e.Size()
			child.entries = append([]kv.Entry{e}, child.entries...)
			child.size += e.Size()
			parent.size += len(e.Key) - len(parent.pivots[i-1])
			parent.pivots[i-1] = append([]byte(nil), e.Key...)
		} else {
			if len(sib.children) <= 2 {
				return
			}
			moved := sib.children[len(sib.children)-1]
			newPivot := sib.pivots[len(sib.pivots)-1]
			sib.children = sib.children[:len(sib.children)-1]
			sib.pivots = sib.pivots[:len(sib.pivots)-1]
			sib.size -= childRefBytes + t.pivotCost(newPivot)
			child.children = append([]int64{moved}, child.children...)
			child.pivots = append([][]byte{parent.pivots[i-1]}, child.pivots...)
			child.size += childRefBytes + t.pivotCost(parent.pivots[i-1])
			parent.size += len(newPivot) - len(parent.pivots[i-1])
			parent.pivots[i-1] = newPivot
		}
	}
}

// Scan calls fn for each entry with lo <= key < hi in key order (hi nil
// means unbounded). fn returning false stops the scan early.
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) {
	t.scan(t.owner, t.root, lo, hi, fn)
}

func (t *Tree) scan(c *engine.Client, off int64, lo, hi []byte, fn func(key, value []byte) bool) bool {
	n := t.getc(c, off)
	defer t.unpinc(c, off)
	if n.leaf {
		i := 0
		if lo != nil {
			i, _ = n.findEntry(lo)
		}
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if hi != nil && kv.Compare(e.Key, hi) >= 0 {
				return false
			}
			if !fn(e.Key, e.Value) {
				return false
			}
		}
		return true
	}
	first := 0
	if lo != nil {
		first = n.findChild(lo)
	}
	for i := first; i < len(n.children); i++ {
		if i > 0 && hi != nil && kv.Compare(n.pivots[i-1], hi) >= 0 {
			return false
		}
		if !t.scan(c, n.children[i], lo, hi, fn) {
			return false
		}
	}
	return true
}

// ScanN collects up to n entries starting at lo.
func (t *Tree) ScanN(lo []byte, n int) []kv.Entry {
	out := make([]kv.Entry, 0, n)
	t.Scan(lo, nil, func(k, v []byte) bool {
		out = append(out, kv.Entry{Key: k, Value: v})
		return len(out) < n
	})
	return out
}

// Check walks the whole tree verifying structural invariants: key order,
// pivot ranges, byte-size accounting, extent fit, and uniform leaf depth.
// It is meant for tests and returns the first violation found.
func (t *Tree) Check() error {
	depth := -1
	var walk func(off int64, lo, hi []byte, level int) error
	walk = func(off int64, lo, hi []byte, level int) error {
		n := t.get(off)
		defer t.unpin(off)
		if n.size != n.computeSize() {
			return fmt.Errorf("node %d: size accounting %d != actual %d", off, n.size, n.computeSize())
		}
		if n.size > t.cfg.NodeBytes {
			return fmt.Errorf("node %d: size %d exceeds extent %d", off, n.size, t.cfg.NodeBytes)
		}
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("leaf %d at depth %d, expected %d", off, level, depth)
			}
			for i, e := range n.entries {
				if i > 0 && kv.Compare(n.entries[i-1].Key, e.Key) >= 0 {
					return fmt.Errorf("leaf %d: entries out of order at %d", off, i)
				}
				if lo != nil && kv.Compare(e.Key, lo) < 0 {
					return fmt.Errorf("leaf %d: key below range", off)
				}
				if hi != nil && kv.Compare(e.Key, hi) >= 0 {
					return fmt.Errorf("leaf %d: key above range", off)
				}
			}
			return nil
		}
		if len(n.children) != len(n.pivots)+1 {
			return fmt.Errorf("node %d: %d children vs %d pivots", off, len(n.children), len(n.pivots))
		}
		for i, p := range n.pivots {
			if i > 0 && kv.Compare(n.pivots[i-1], p) >= 0 {
				return fmt.Errorf("node %d: pivots out of order at %d", off, i)
			}
			if lo != nil && kv.Compare(p, lo) < 0 {
				return fmt.Errorf("node %d: pivot below range", off)
			}
			if hi != nil && kv.Compare(p, hi) >= 0 {
				return fmt.Errorf("node %d: pivot above range", off)
			}
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.pivots[i-1]
			}
			if i < len(n.pivots) {
				chi = n.pivots[i]
			}
			if err := walk(c, clo, chi, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, nil, nil, 0)
}
