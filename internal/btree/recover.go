// Checkpoint/Open: the B-tree's half of engine crash recovery. The tree
// keeps no volatile state outside the engine's pager — every dirty node is
// a dirty page the engine checkpoint captures — so its manifest is just the
// header fields needed to find the root again.

package btree

import (
	"fmt"

	"iomodels/internal/engine"
	"iomodels/internal/kv"
)

const manifestMagic = 0x42545243 // "BTRC"

// Checkpoint implements engine.RecoverableDict: it returns a manifest from
// which Open reconstructs the tree against a recovered engine.
func (t *Tree) Checkpoint() []byte {
	var e kv.Enc
	e.U32(manifestMagic)
	e.U64(uint64(t.root))
	e.U64(uint64(t.height))
	e.U64(uint64(t.items))
	e.U64(uint64(t.nodes))
	e.U64(uint64(t.LogicalBytesInserted))
	return e.Buf
}

// Open reconstructs a tree from a Checkpoint manifest on a recovered
// engine. cfg must match the configuration the tree was created with (node
// bytes determine every IO size and extent layout).
func Open(cfg Config, eng *engine.Engine, manifest []byte) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &kv.Dec{Buf: manifest}
	if magic := d.U32(); magic != manifestMagic {
		return nil, fmt.Errorf("btree: bad manifest magic %#x", magic)
	}
	t := &Tree{cfg: cfg, eng: eng, owner: eng.Owner()}
	t.root = int64(d.U64())
	t.height = int(d.U64())
	t.items = int(d.U64())
	t.nodes = int(d.U64())
	t.LogicalBytesInserted = int64(d.U64())
	if d.Err != nil {
		return nil, fmt.Errorf("btree: corrupt manifest: %w", d.Err)
	}
	return t, nil
}

var _ engine.RecoverableDict = (*Tree)(nil)
