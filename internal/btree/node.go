// Node representation and on-disk serialization for the B-tree.
//
// Nodes are serialized into fixed-size extents of Config.NodeBytes — the
// paper's tunable B. Every load reads the whole extent and every store
// writes the whole extent, so the tree's IO sizes are exactly its node size,
// as in the classic B-tree analyses of §5.

package btree

import (
	"fmt"
	"hash/crc32"
	"sort"

	"iomodels/internal/kv"
)

const (
	magicLeaf     = 0xB1
	magicInternal = 0xB2

	// headerBytes is magic(1) + count(4); footerBytes is the crc32.
	headerBytes = 5
	footerBytes = 4
	// baseNodeBytes is the serialized size of an empty node.
	baseNodeBytes = headerBytes + footerBytes
	// childRefBytes is the serialized size of one child pointer.
	childRefBytes = 8
)

// node is a decoded B-tree node. Exactly one of (entries) and
// (pivots, children) is populated, according to leaf.
type node struct {
	leaf     bool
	entries  []kv.Entry // leaf payload, sorted by key
	pivots   [][]byte   // internal: len(children)-1 separators
	children []int64    // internal: child extent offsets
	size     int        // current serialized size in bytes
}

func newLeaf() *node { return &node{leaf: true, size: baseNodeBytes} }

func newInternal() *node { return &node{size: baseNodeBytes} }

// computeSize recomputes the serialized size from scratch (used by
// consistency checks; mutations maintain size incrementally).
func (n *node) computeSize() int {
	s := baseNodeBytes
	if n.leaf {
		for _, e := range n.entries {
			s += e.Size()
		}
		return s
	}
	s += len(n.children) * childRefBytes
	for _, p := range n.pivots {
		s += 4 + len(p)
	}
	return s
}

// findChild returns the index of the child covering key: pivots[i] separates
// children[i] (keys < pivots[i]) from children[i+1] (keys >= pivots[i]).
func (n *node) findChild(key []byte) int {
	return sort.Search(len(n.pivots), func(i int) bool {
		return kv.Compare(key, n.pivots[i]) < 0
	})
}

// findEntry returns the position of key in a leaf and whether it is present.
func (n *node) findEntry(key []byte) (int, bool) {
	i := sort.Search(len(n.entries), func(i int) bool {
		return kv.Compare(n.entries[i].Key, key) >= 0
	})
	if i < len(n.entries) && kv.Compare(n.entries[i].Key, key) == 0 {
		return i, true
	}
	return i, false
}

// insertEntry inserts or replaces (key, value) in a leaf and returns the
// change in serialized size.
func (n *node) insertEntry(key, value []byte) int {
	i, found := n.findEntry(key)
	if found {
		delta := len(value) - len(n.entries[i].Value)
		n.entries[i].Value = value
		n.size += delta
		return delta
	}
	n.entries = append(n.entries, kv.Entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = kv.Entry{Key: key, Value: value}
	delta := kv.EncodedEntrySize(key, value)
	n.size += delta
	return delta
}

// removeEntry deletes key from a leaf if present, reporting whether it was.
func (n *node) removeEntry(key []byte) bool {
	i, found := n.findEntry(key)
	if !found {
		return false
	}
	n.size -= n.entries[i].Size()
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	return true
}

// encode serializes n into a buffer of exactly nodeBytes (zero padded) and
// appends a crc32 of the payload so torn or corrupted extents are detected
// on load.
func (n *node) encode(nodeBytes int) []byte {
	var e kv.Enc
	e.Buf = make([]byte, 0, nodeBytes)
	if n.leaf {
		e.U8(magicLeaf)
		e.U32(uint32(len(n.entries)))
		for _, ent := range n.entries {
			e.Entry(ent)
		}
	} else {
		e.U8(magicInternal)
		e.U32(uint32(len(n.children)))
		for _, c := range n.children {
			e.U64(uint64(c))
		}
		for _, p := range n.pivots {
			e.Bytes(p)
		}
	}
	if len(e.Buf)+footerBytes > nodeBytes {
		panic(fmt.Sprintf("btree: node overflows extent: %d+%d > %d", len(e.Buf), footerBytes, nodeBytes))
	}
	crc := crc32.ChecksumIEEE(e.Buf)
	payload := len(e.Buf)
	buf := make([]byte, nodeBytes)
	copy(buf, e.Buf)
	// CRC goes at the end of the payload; the decoder re-derives the payload
	// length from the structure, so store the crc immediately after it.
	buf[payload] = byte(crc >> 24)
	buf[payload+1] = byte(crc >> 16)
	buf[payload+2] = byte(crc >> 8)
	buf[payload+3] = byte(crc)
	return buf
}

// decodeNode parses an extent produced by encode, verifying the checksum.
func decodeNode(buf []byte) (*node, error) {
	d := kv.Dec{Buf: buf}
	n := &node{}
	switch d.U8() {
	case magicLeaf:
		n.leaf = true
		count := int(d.U32())
		if count > len(buf) { // entries are multi-byte; a count beyond this is corruption
			return nil, fmt.Errorf("btree: implausible entry count %d", count)
		}
		n.entries = make([]kv.Entry, 0, count)
		for i := 0; i < count && d.Err == nil; i++ {
			n.entries = append(n.entries, d.Entry())
		}
	case magicInternal:
		count := int(d.U32())
		if count < 1 || count > len(buf)/childRefBytes {
			return nil, fmt.Errorf("btree: implausible child count %d", count)
		}
		n.children = make([]int64, 0, count)
		for i := 0; i < count && d.Err == nil; i++ {
			n.children = append(n.children, int64(d.U64()))
		}
		n.pivots = make([][]byte, 0, count-1)
		for i := 0; i < count-1 && d.Err == nil; i++ {
			n.pivots = append(n.pivots, d.Bytes())
		}
	default:
		return nil, fmt.Errorf("btree: bad node magic 0x%02x", buf[0])
	}
	if d.Err != nil {
		return nil, d.Err
	}
	payload := d.Off
	if payload+footerBytes > len(buf) {
		return nil, fmt.Errorf("btree: truncated node footer")
	}
	want := uint32(buf[payload])<<24 | uint32(buf[payload+1])<<16 | uint32(buf[payload+2])<<8 | uint32(buf[payload+3])
	if got := crc32.ChecksumIEEE(buf[:payload]); got != want {
		return nil, fmt.Errorf("btree: checksum mismatch: extent torn or corrupt")
	}
	n.size = payload + footerBytes
	return n, nil
}
