// Property-based tests (testing/quick) for the B-tree.

package btree

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestQuickScriptsAgainstModel replays quick-generated op scripts against a
// reference map with invariant checks.
func TestQuickScriptsAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		ID   uint16
		VLen uint8
	}
	f := func(s []op) bool {
		tree := newTestTree(t, 1024, 32<<10)
		model := map[string][]byte{}
		for _, o := range s {
			k := key(int(o.ID % 300))
			switch o.Kind % 4 {
			case 0, 1:
				v := bytes.Repeat([]byte{byte(o.VLen)}, int(o.VLen)%96)
				tree.Put(k, v)
				model[string(k)] = v
			case 2:
				got := tree.Delete(k)
				_, want := model[string(k)]
				if got != want {
					return false
				}
				delete(model, string(k))
			case 3:
				got, ok := tree.Get(k)
				want, wok := model[string(k)]
				if ok != wok || (ok && !bytes.Equal(got, want)) {
					return false
				}
			}
		}
		if err := tree.Check(); err != nil {
			t.Logf("invariant violation: %v", err)
			return false
		}
		if tree.Items() != len(model) {
			return false
		}
		count := 0
		tree.Scan(nil, nil, func(k, v []byte) bool {
			count++
			return !bytes.Equal(v, []byte("never"))
		})
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSerializationRoundtrip: any node shape survives encode/decode.
func TestQuickSerializationRoundtrip(t *testing.T) {
	f := func(ids []uint16, vlen uint8) bool {
		n := newLeaf()
		for _, id := range ids {
			if len(ids) > 20 {
				break
			}
			n.insertEntry(key(int(id%100)), bytes.Repeat([]byte{1}, int(vlen)%64))
		}
		buf := n.encode(4096)
		dec, err := decodeNode(buf)
		if err != nil {
			return false
		}
		if len(dec.entries) != len(n.entries) || dec.size != n.size {
			return false
		}
		for i := range dec.entries {
			if !bytes.Equal(dec.entries[i].Key, n.entries[i].Key) ||
				!bytes.Equal(dec.entries[i].Value, n.entries[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInternalRoundtrip does the same for internal nodes.
func TestQuickInternalRoundtrip(t *testing.T) {
	f := func(children []int64, pivotSeed uint8) bool {
		if len(children) == 0 || len(children) > 16 {
			return true
		}
		n := newInternal()
		for i, c := range children {
			if c < 0 {
				c = -c
			}
			n.children = append(n.children, c)
			if i > 0 {
				n.pivots = append(n.pivots, key(int(pivotSeed)+i))
			}
		}
		n.size = n.computeSize()
		buf := n.encode(4096)
		dec, err := decodeNode(buf)
		if err != nil {
			return false
		}
		if len(dec.children) != len(n.children) || len(dec.pivots) != len(n.pivots) {
			return false
		}
		for i := range dec.children {
			if dec.children[i] != n.children[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
