// Package hdd simulates a mechanical hard-disk drive.
//
// The simulator is deliberately mechanistic: each random IO pays a seek
// (track-to-track up to full-stroke, growing with the square root of the
// distance travelled, per Ruemmler & Wilkes), a rotational latency (uniform
// in one platter revolution), and a transfer time proportional to the IO
// size; sequential IOs pay transfer only. The affine model's s and t are
// never evaluated here — they *emerge*, and the Table 2 experiment recovers
// them by linear regression, exactly as the paper does on real drives.
package hdd

import (
	"fmt"
	"math"

	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
)

// Profile describes a drive's mechanical parameters.
type Profile struct {
	Name       string
	Year       int
	CapacityGB int64   // addressable capacity, decimal GB as marketed
	RPM        float64 // spindle speed
	SeekMin    sim.Time
	SeekMax    sim.Time
	Bandwidth  float64 // sustained media transfer rate, bytes/second
	Overhead   sim.Time
}

// Capacity returns the capacity in bytes.
func (p Profile) Capacity() int64 { return p.CapacityGB * 1e9 }

// RotationPeriod returns the time of one revolution.
func (p Profile) RotationPeriod() sim.Time {
	return sim.FromSeconds(60 / p.RPM)
}

// ExpectedSetup returns the analytically expected per-IO setup cost for
// uniformly random accesses: mean seek plus half a revolution plus fixed
// overhead. This is the ground-truth "s" the Table 2 regression should
// recover.
//
// For X, Y uniform on [0,1], E[sqrt(|X-Y|)] = 8/15, so the mean seek is
// SeekMin + (8/15)(SeekMax - SeekMin).
func (p Profile) ExpectedSetup() sim.Time {
	meanSeek := float64(p.SeekMin) + 8.0/15.0*float64(p.SeekMax-p.SeekMin)
	return sim.Time(meanSeek) + p.RotationPeriod()/2 + p.Overhead
}

// ExpectedTransferPer4K returns the ground-truth "t": seconds per 4 KiB of
// transfer.
func (p Profile) ExpectedTransferPer4K() float64 {
	return 4096 / p.Bandwidth
}

// ExpectedAlpha returns the ground-truth normalized bandwidth cost
// α = t/s with t measured per 4 KiB block, matching Table 2's units.
func (p Profile) ExpectedAlpha() float64 {
	return p.ExpectedTransferPer4K() / p.ExpectedSetup().Seconds()
}

// profileFor constructs mechanical parameters that realize a target setup
// cost s (seconds) and transfer cost t (seconds per 4 KiB), the two columns
// of the paper's Table 2. The split between seek and rotation follows
// commodity drives: 7200 RPM, track-to-track seek at one third of the mean
// seek.
func profileFor(name string, year int, capacityGB int64, s, t float64) Profile {
	const rpm = 7200.0
	rotHalf := 60 / rpm / 2 // seconds
	overhead := 0.0002      // 0.2 ms controller/settle overhead
	meanSeek := s - rotHalf - overhead
	if meanSeek <= 0 {
		panic("hdd: target setup cost too small for 7200 RPM")
	}
	seekMin := meanSeek / 3
	// meanSeek = seekMin + 8/15 (seekMax - seekMin)
	seekMax := seekMin + (meanSeek-seekMin)*15/8
	return Profile{
		Name:       name,
		Year:       year,
		CapacityGB: capacityGB,
		RPM:        rpm,
		SeekMin:    sim.FromSeconds(seekMin),
		SeekMax:    sim.FromSeconds(seekMax),
		Bandwidth:  4096 / t,
		Overhead:   sim.FromSeconds(overhead),
	}
}

// Profiles returns the five commodity drives of the paper's Table 2, with
// mechanical parameters chosen so that the ground-truth s and t equal the
// paper's measured values.
func Profiles() []Profile {
	return []Profile{
		profileFor("2 TB Seagate", 2002, 2000, 0.018, 0.000021),
		profileFor("250 GB Seagate", 2006, 250, 0.015, 0.000033),
		profileFor("1 TB Hitachi", 2009, 1000, 0.013, 0.000041),
		profileFor("1 TB WD Black", 2011, 1000, 0.012, 0.000035),
		profileFor("6 TB WD Red", 2018, 6000, 0.016, 0.000026),
	}
}

// DefaultProfile returns the drive used by the node-size experiments
// (Figures 2 and 3): the 1 TB Hitachi, whose α = 0.0031 sits mid-range.
func DefaultProfile() Profile { return Profiles()[2] }

// Disk is a simulated hard drive. It implements storage.Device. Not safe
// for concurrent use outside a sim.Engine (which serializes processes).
type Disk struct {
	prof    Profile
	rng     *stats.RNG
	head    int64    // current head byte position
	seqEnd  int64    // end offset of the last IO, for sequential detection
	freeAt  sim.Time // device busy until
	noRot   bool     // deterministic mode: rotational latency fixed at mean
	IOCount int64
}

var _ storage.Device = (*Disk)(nil)

// New creates a drive with the given profile. seed controls the rotational
// latency stream.
func New(prof Profile, seed uint64) *Disk {
	return &Disk{prof: prof, rng: stats.NewRNG(seed), seqEnd: -1}
}

// NewDeterministic creates a drive whose rotational latency is pinned at its
// mean (half a revolution) instead of drawn uniformly. Property tests use
// this to get exactly reproducible latencies independent of IO order.
func NewDeterministic(prof Profile) *Disk {
	d := New(prof, 1)
	d.noRot = true
	return d
}

// Profile returns the drive's parameters.
func (d *Disk) Profile() Profile { return d.prof }

// Name implements storage.Device.
func (d *Disk) Name() string { return fmt.Sprintf("%s (%d)", d.prof.Name, d.prof.Year) }

// Capacity implements storage.Device.
func (d *Disk) Capacity() int64 { return d.prof.Capacity() }

// seekTime returns the head travel time for a byte distance, using the
// square-root law: short seeks are dominated by head settling, long seeks by
// the arm's acceleration-limited travel.
func (d *Disk) seekTime(dist int64) sim.Time {
	if dist == 0 {
		return 0
	}
	frac := math.Sqrt(float64(dist) / float64(d.prof.Capacity()))
	return d.prof.SeekMin + sim.Time(frac*float64(d.prof.SeekMax-d.prof.SeekMin))
}

// Access implements storage.Device: it computes the completion time of an
// IO issued at now. Reads and writes are timed identically on spinning
// media.
func (d *Disk) Access(now sim.Time, _ storage.Op, off, size int64) sim.Time {
	if size <= 0 {
		panic("hdd: non-positive IO size")
	}
	if off < 0 || off+size > d.prof.Capacity() {
		panic(fmt.Sprintf("hdd: IO out of range: [%d,%d) capacity %d", off, off+size, d.prof.Capacity()))
	}
	start := now
	if d.freeAt > start {
		start = d.freeAt
	}
	var setup sim.Time
	if off != d.seqEnd {
		rot := d.prof.RotationPeriod() / 2
		if !d.noRot {
			rot = sim.Time(d.rng.Float64() * float64(d.prof.RotationPeriod()))
		}
		setup = d.seekTime(abs64(off-d.head)) + rot + d.prof.Overhead
	}
	transfer := sim.FromSeconds(float64(size) / d.prof.Bandwidth)
	done := start + setup + transfer
	d.head = off + size
	d.seqEnd = off + size
	d.freeAt = done
	d.IOCount++
	return done
}

// Reboot implements storage.Rebooter: a power cycle discards the drive's
// volatile scheduling state — pending-IO completion horizon, head position,
// sequential-run tracking — while the platters keep their bytes. Without
// this, a crash/recovery simulation on a fresh clock would charge the first
// post-reboot IO the entire pre-crash busy time.
func (d *Disk) Reboot() {
	d.freeAt = 0
	d.head = 0
	d.seqEnd = -1
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
