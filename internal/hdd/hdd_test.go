package hdd

import (
	"math"
	"testing"

	"iomodels/internal/fit"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
)

func TestProfilesMatchTable2Targets(t *testing.T) {
	// The mechanical parameters must realize the paper's measured s and t.
	targets := []struct {
		s, t4k float64
	}{
		{0.018, 0.000021},
		{0.015, 0.000033},
		{0.013, 0.000041},
		{0.012, 0.000035},
		{0.016, 0.000026},
	}
	profs := Profiles()
	if len(profs) != len(targets) {
		t.Fatalf("%d profiles", len(profs))
	}
	for i, p := range profs {
		if got := p.ExpectedSetup().Seconds(); math.Abs(got-targets[i].s) > 1e-6 {
			t.Errorf("%s: expected setup %v, want %v", p.Name, got, targets[i].s)
		}
		if got := p.ExpectedTransferPer4K(); math.Abs(got-targets[i].t4k) > 1e-9 {
			t.Errorf("%s: transfer per 4K %v, want %v", p.Name, got, targets[i].t4k)
		}
		wantAlpha := targets[i].t4k / targets[i].s
		if got := p.ExpectedAlpha(); math.Abs(got-wantAlpha)/wantAlpha > 0.01 {
			t.Errorf("%s: alpha %v, want %v", p.Name, got, wantAlpha)
		}
	}
}

func TestRandomIOCostsSetupPlusTransfer(t *testing.T) {
	p := DefaultProfile()
	d := NewDeterministic(p)
	done := d.Access(0, storage.Read, 0, 4096)
	// First IO from head position 0 to offset 0: no seek distance, but
	// rotation + overhead still apply.
	min := p.RotationPeriod()/2 + p.Overhead
	if done < min {
		t.Fatalf("first IO too fast: %v < %v", done, min)
	}
	// A far-away IO must include a long seek.
	far := d.Access(done, storage.Read, p.Capacity()-4096, 4096)
	if far-done < p.SeekMin {
		t.Fatalf("far IO did not seek: %v", far-done)
	}
}

func TestSequentialIOSkipsSetup(t *testing.T) {
	p := DefaultProfile()
	d := NewDeterministic(p)
	firstDone := d.Access(0, storage.Read, 0, 64<<10)
	seqDone := d.Access(firstDone, storage.Read, 64<<10, 64<<10)
	transfer := sim.FromSeconds(float64(64<<10) / p.Bandwidth)
	if got := seqDone - firstDone; got < transfer || got > transfer+sim.Microsecond {
		t.Fatalf("sequential IO cost %v, want ~%v", got, transfer)
	}
}

func TestDeviceBusySerializes(t *testing.T) {
	p := DefaultProfile()
	d := NewDeterministic(p)
	done1 := d.Access(0, storage.Read, 0, 4096)
	// Submit at time 0 again: must queue behind the first.
	done2 := d.Access(0, storage.Read, 1<<20, 4096)
	if done2 <= done1 {
		t.Fatalf("second IO finished before first: %v <= %v", done2, done1)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(DefaultProfile(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Access(0, storage.Read, d.Capacity()-100, 4096)
}

func TestNonPositiveSizePanics(t *testing.T) {
	d := New(DefaultProfile(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Access(0, storage.Read, 0, 0)
}

// TestAffineFitQuality reproduces the Table 2 methodology in miniature for
// one drive: 64 random block-aligned reads per IO size, linear regression of
// mean time versus size, and requires the near-perfect R² the paper reports
// and recovered parameters near ground truth.
func TestAffineFitQuality(t *testing.T) {
	for _, p := range Profiles() {
		d := New(p, 12345)
		rng := stats.NewRNG(99)
		var now sim.Time
		var xs, ys []float64 // x: 4KiB blocks, y: seconds per IO
		for _, blocks := range []int64{1, 4, 16, 64, 256, 1024, 4096} {
			size := blocks * 4096
			const rounds = 64
			start := now
			for i := 0; i < rounds; i++ {
				off := rng.Int63n((p.Capacity()-size)/4096) * 4096
				now = d.Access(now, storage.Read, off, size)
			}
			xs = append(xs, float64(blocks))
			ys = append(ys, (now-start).Seconds()/rounds)
		}
		line, err := fit.Linear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if line.R2 < 0.995 {
			t.Errorf("%s: R2 = %v, want > 0.995", p.Name, line.R2)
		}
		if s := p.ExpectedSetup().Seconds(); math.Abs(line.Intercept-s)/s > 0.15 {
			t.Errorf("%s: fitted s = %v, ground truth %v", p.Name, line.Intercept, s)
		}
		if tr := p.ExpectedTransferPer4K(); math.Abs(line.Slope-tr)/tr > 0.15 {
			t.Errorf("%s: fitted t = %v, ground truth %v", p.Name, line.Slope, tr)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() sim.Time {
		d := New(DefaultProfile(), 7)
		rng := stats.NewRNG(3)
		var now sim.Time
		for i := 0; i < 200; i++ {
			off := rng.Int63n(d.Capacity()/4096-16) * 4096
			now = d.Access(now, storage.Read, off, 64<<10)
		}
		return now
	}
	if run() != run() {
		t.Fatal("same seed produced different totals")
	}
}

func TestName(t *testing.T) {
	d := New(DefaultProfile(), 1)
	if d.Name() != "1 TB Hitachi (2009)" {
		t.Fatalf("name = %q", d.Name())
	}
}
