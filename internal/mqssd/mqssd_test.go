package mqssd

import (
	"testing"

	"iomodels/internal/core"
	"iomodels/internal/pdamdev"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
)

// TestSingleQueueDegeneratesToPDAM is the contract test: with one queue,
// depth ≥ P, and no write queue, the multi-queue device must produce
// exactly the PDAM's completion times for any access sequence — the MQ is
// a refinement, not a different model.
func TestSingleQueueDegeneratesToPDAM(t *testing.T) {
	const p, block = 8, int64(4 << 10)
	step := sim.Millisecond
	mq := New(Config{
		Queues: 1, PerQueueP: p, QueueDepth: p, Interference: 0.5, // β must be irrelevant at Q=1
		BlockBytes: block, StepTime: step,
	}).Storage(1 << 30)
	pd := pdamdev.New(p, block, step).Storage(1 << 30)

	rng := stats.NewRNG(42)
	var now sim.Time
	for i := 0; i < 2000; i++ {
		op := storage.Read
		if rng.Int63n(4) == 0 {
			op = storage.Write
		}
		off := rng.Int63n(1<<20) * block
		size := (1 + rng.Int63n(6)) * block
		a := mq.Access(now, op, off, size)
		b := pd.Access(now, op, off, size)
		if a != b {
			t.Fatalf("op %d: mq done %v != pdam done %v (now %v, size %d)", i, a, b, now, size)
		}
		// Drive time forward irregularly, sometimes within the same step.
		if rng.Int63n(3) == 0 {
			now = a
		} else {
			now += sim.Time(rng.Int63n(int64(step)))
		}
	}
	if ph := mq.ParallelismHint(); ph != p {
		t.Fatalf("ParallelismHint = %d, want %d", ph, p)
	}
}

// TestModelDegeneracy: the analytic side of the same contract — core.MQ
// with one queue predicts exactly what core.PDAM predicts.
func TestModelDegeneracy(t *testing.T) {
	pd := core.PDAM{P: 16, BlockBytes: 4096, StepSeconds: 1e-3}
	mq := core.MQFromPDAM(pd)
	for p := 1; p <= 64; p *= 2 {
		got := mq.MQReadSeconds(p, 256)
		want := pd.PDAMReadSeconds(p, 256)
		if got != want {
			t.Fatalf("p=%d: MQReadSeconds %g != PDAMReadSeconds %g", p, got, want)
		}
	}
}

// TestQueueDepthCapsService: a queue of depth D < PerQueueP serves only D
// IOs per step even when uncontended.
func TestQueueDepthCapsService(t *testing.T) {
	d := New(Config{Queues: 1, PerQueueP: 8, QueueDepth: 4, BlockBytes: 4096, StepTime: sim.Millisecond})
	done := d.Submit(0, 0, 8)
	if want := 2 * sim.Millisecond; done != want {
		t.Fatalf("8 IOs at depth 4 done at %v, want %v (2 steps)", done, want)
	}
}

// TestCrossQueueInterference: two queues active in one step each serve
// fewer IOs than one queue alone would.
func TestCrossQueueInterference(t *testing.T) {
	cfg := Config{Queues: 2, PerQueueP: 8, QueueDepth: 8, Interference: 1, BlockBytes: 4096, StepTime: sim.Millisecond}
	// Alone: 8 IOs in one step.
	alone := New(cfg)
	if done := alone.Submit(0, 0, 8); done != sim.Millisecond {
		t.Fatalf("uncontended queue: done %v, want 1 step", done)
	}
	// Contended: with both queues active, each gets floor(8/(1+1)) = 4
	// slots per step, so 8 IOs take 2 steps.
	both := New(cfg)
	if done := both.Submit(0, 0, 8); done != sim.Millisecond {
		t.Fatalf("first queue: done %v, want 1 step", done)
	}
	// Queue 0 filled step 0 before queue 1 joined; its schedule stands.
	// Queue 1 now sees 2 active queues in step 0: 4 slots there, 4 in step 1.
	if done := both.Submit(1, 0, 8); done != 2*sim.Millisecond {
		t.Fatalf("second queue: done %v, want 2 steps under interference", done)
	}
}

// TestWriteQueueIsolation: with a dedicated write queue, a burst of writes
// does not delay a read; without one, the read queues behind the writes.
func TestWriteQueueIsolation(t *testing.T) {
	base := Config{Queues: 1, PerQueueP: 4, QueueDepth: 4, BlockBytes: 4096, StepTime: sim.Millisecond}

	withWQ := base
	withWQ.WriteQueue = true
	s := New(withWQ).Storage(1 << 30)
	s.Access(0, storage.Write, 0, 16*4096) // 4 steps of write backlog on the write queue
	if done := s.Access(0, storage.Read, 0, 4096); done != sim.Millisecond {
		t.Fatalf("read behind isolated writes done at %v, want 1 step", done)
	}

	s = New(base).Storage(1 << 30) // shared queue
	s.Access(0, storage.Write, 0, 16*4096)
	if done := s.Access(0, storage.Read, 0, 4096); done <= 4*sim.Millisecond {
		t.Fatalf("read sharing the write queue done at %v, want after the 4-step backlog", done)
	}
}

// TestReadStriping: reads route to queues by block address, round-robin.
func TestReadStriping(t *testing.T) {
	d := New(Config{Queues: 4, PerQueueP: 2, QueueDepth: 2, BlockBytes: 4096, StepTime: sim.Millisecond})
	for block := int64(0); block < 8; block++ {
		q := d.QueueFor(storage.Read, block*4096)
		if want := int(block % 4); q != want {
			t.Fatalf("block %d routed to queue %d, want %d", block, q, want)
		}
	}
	// Striped reads land in distinct queues and share the step: 4 one-block
	// reads at consecutive block addresses all finish in step 0.
	s := New(Config{Queues: 4, PerQueueP: 1, QueueDepth: 1, BlockBytes: 4096, StepTime: sim.Millisecond}).Storage(1 << 30)
	for i := int64(0); i < 4; i++ {
		if done := s.Access(0, storage.Read, i*4096, 4096); done != sim.Millisecond {
			t.Fatalf("striped read %d done at %v, want 1 step", i, done)
		}
	}
}

// TestHints: ParallelismHint is the effective (depth- and
// interference-capped) parallelism; QueueHint's per-queue outstanding
// target is the depth (capped by the slot count), bracketed between the
// effective and raw parallelism.
func TestHints(t *testing.T) {
	s := New(DefaultConfig()).Storage(1 << 30)
	q, per := s.QueueHint()
	cfgd := s.Params()
	if wantPer := cfgd.QueueDepth; per != wantPer || q != cfgd.Queues {
		t.Fatalf("QueueHint = (%d, %d), want (%d, %d)", q, per, cfgd.Queues, wantPer)
	}
	if q*per < s.ParallelismHint() {
		t.Fatalf("QueueHint in-flight %d×%d below ParallelismHint %d", q, per, s.ParallelismHint())
	}
	cfg := s.Params()
	if raw := cfg.Queues * cfg.PerQueueP; s.ParallelismHint() >= raw {
		t.Fatalf("effective parallelism %d not below raw slot count %d — profile has no headroom to model", s.ParallelismHint(), raw)
	}
	if got := cfg.Model().EffectiveParallelism(); got != s.ParallelismHint() {
		t.Fatalf("model EffectiveParallelism %d != ParallelismHint %d", got, s.ParallelismHint())
	}
}

// TestReboot: a power cycle forgets queue backlog.
func TestReboot(t *testing.T) {
	s := New(Config{Queues: 1, PerQueueP: 1, QueueDepth: 1, BlockBytes: 4096, StepTime: sim.Millisecond}).Storage(1 << 30)
	s.Access(0, storage.Read, 0, 8*4096) // 8 steps of backlog
	s.Reboot()
	if done := s.Access(0, storage.Read, 0, 4096); done != sim.Millisecond {
		t.Fatalf("read after reboot done at %v, want 1 step", done)
	}
}
