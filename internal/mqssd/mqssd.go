// Package mqssd implements the multi-queue refinement of the PDAM device:
// instead of one pool of P IO slots per time step (internal/pdamdev), the
// device exposes N submission/completion queue pairs, each serving up to
// PerQueueP IOs per step, capped by the queue's depth and diluted by
// cross-queue interference when several queues are active in the same step
// (the multi-queue SSD modeling direction of arXiv 2507.06349; the slot
// arithmetic is core.MQ, so the device and the accountant's predictions
// share one formula — like pdamdev, this device IS the model).
//
// Reads are striped across the read queues by block address (an FTL-style
// static mapping), so independent reads spread out and a key-range-affine
// scheduler can fill queues evenly. Writes optionally route to a dedicated
// extra queue pair: WAL group commits then never occupy read-queue slots,
// though they still exert cross-queue interference.
//
// Like every device model in the repo, it is driven entirely in virtual
// time (sim.Time) — no wall-clock reads (the iolint virtualtime analyzer
// enforces this).
package mqssd

import (
	"fmt"

	"iomodels/internal/core"
	"iomodels/internal/sim"
	"iomodels/internal/storage"
)

// Config shapes the device. Zero values select defaults (see withDefaults).
type Config struct {
	Queues       int      // N read submission/completion queue pairs
	PerQueueP    int      // IOs one uncontended queue serves per step
	QueueDepth   int      // per-queue outstanding cap (0 = PerQueueP)
	Interference float64  // β: per extra active queue, service drops by 1+β·(a−1)
	WriteQueue   bool     // dedicate an extra queue pair to writes
	BlockBytes   int64    // B, the IO size
	StepTime     sim.Time // wall-clock length of one time step
}

// DefaultConfig is the E23 device profile: 4 read queues of 8 slots each
// (raw P = 32), but depth 4 and interference 1/8 cap the realizable
// parallelism at 8 IOs/step — a PDAM reading of the geometry overcommits it
// 4×. A dedicated write queue keeps group commits off the read queues.
func DefaultConfig() Config {
	return Config{
		Queues: 4, PerQueueP: 8, QueueDepth: 4, Interference: 0.125,
		WriteQueue: true, BlockBytes: 4 << 10, StepTime: sim.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	if c.Queues == 0 {
		c.Queues = 4
	}
	if c.PerQueueP == 0 {
		c.PerQueueP = 8
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = c.PerQueueP
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 4 << 10
	}
	if c.StepTime == 0 {
		c.StepTime = sim.Millisecond
	}
	return c
}

// Model returns the read-queue geometry as the analytic core.MQ model the
// accountant predicts with (the device's own slot arithmetic).
func (c Config) Model() core.MQ {
	return core.MQ{
		Queues: c.Queues, PerQueueP: c.PerQueueP, QueueDepth: c.QueueDepth,
		Beta: c.Interference, BlockBytes: float64(c.BlockBytes),
		StepSeconds: c.StepTime.Seconds(),
	}
}

// queueState is one queue pair's step-packing bookkeeping.
type queueState struct {
	usage      map[int64]int // step index -> slots consumed by this queue
	pruneBelow int64
}

// Device is the multi-queue device. Like pdamdev.Device it is driven at
// virtual-time granularity with service on step boundaries, and the engine
// serializes callers.
type Device struct {
	cfg   Config
	model core.MQ

	queues   []queueState  // read queues; +1 trailing write queue if enabled
	active   map[int64]int // step index -> queues with ≥1 IO in that step
	TotalIOs int64
}

// New creates a multi-queue device from cfg (zero fields defaulted).
func New(cfg Config) *Device {
	cfg = cfg.withDefaults()
	if cfg.Queues < 1 || cfg.PerQueueP < 1 || cfg.QueueDepth < 1 ||
		cfg.Interference < 0 || cfg.BlockBytes <= 0 || cfg.StepTime <= 0 {
		panic("mqssd: invalid parameters")
	}
	n := cfg.Queues
	if cfg.WriteQueue {
		n++
	}
	d := &Device{cfg: cfg, model: cfg.Model(), queues: make([]queueState, n), active: make(map[int64]int)}
	for i := range d.queues {
		d.queues[i].usage = make(map[int64]int)
	}
	return d
}

// Config returns the device's (defaulted) configuration.
func (d *Device) Config() Config { return d.cfg }

// StepOf returns the index of the step containing virtual time t.
func (d *Device) StepOf(t sim.Time) int64 { return int64(t) / int64(d.cfg.StepTime) }

// EndOfStep returns the completion instant of step s.
func (d *Device) EndOfStep(s int64) sim.Time { return sim.Time(s+1) * d.cfg.StepTime }

// QueueFor routes an IO: writes to the dedicated write queue when one is
// configured, reads (and writes without one) striped across the read queues
// by block address.
func (d *Device) QueueFor(op storage.Op, off int64) int {
	if op == storage.Write && d.cfg.WriteQueue {
		return d.cfg.Queues // the trailing write queue
	}
	if d.cfg.Queues == 1 {
		return 0
	}
	block := off / d.cfg.BlockBytes
	if block < 0 {
		block = -block
	}
	return int(block % int64(d.cfg.Queues))
}

// freeAt returns the slots queue q can still take in step s. The queue's
// capacity depends on how many queues are active in s — including q itself
// once it joins — and can retroactively fall below what earlier joiners
// already packed (their schedule stands; free clamps at 0).
//
// Interference lingers one step: the census also counts queues active in
// s−1, because a controller that served several queues a step ago has not
// reconfigured yet. This keeps saturated service at Queues·QueueSlots(Queues)
// per step — the all-active closed form — instead of rewarding whichever
// queue packs a fresh step first with an uncontended slot count.
func (d *Device) freeAt(q int, s int64) int {
	used := d.queues[q].usage[s]
	a := d.active[s]
	if used == 0 {
		a++ // q joining s would add one active queue
	}
	if prev := d.active[s-1]; prev > a {
		a = prev
	}
	free := d.model.QueueSlots(a) - used
	if free < 0 {
		return 0
	}
	return free
}

// Submit schedules n block IOs on queue q at time now and returns the
// completion time of the last one: greedy packing into the earliest steps
// where the queue has free capacity, exactly pdamdev.Submit generalized to
// per-queue slots. Submitting zero blocks returns now.
func (d *Device) Submit(q int, now sim.Time, n int) sim.Time {
	if q < 0 || q >= len(d.queues) {
		panic(fmt.Sprintf("mqssd: queue %d out of range", q))
	}
	if n < 0 {
		panic("mqssd: negative IO count")
	}
	if n == 0 {
		return now
	}
	d.TotalIOs += int64(n)
	qs := &d.queues[q]
	step := d.StepOf(now)
	d.prune(q, step)
	var done sim.Time
	for n > 0 {
		free := d.freeAt(q, step)
		if free > 0 {
			if qs.usage[step] == 0 {
				d.active[step]++
			}
			take := free
			if take > n {
				take = n
			}
			qs.usage[step] += take
			n -= take
			done = d.EndOfStep(step)
		}
		step++
	}
	return done
}

// SlotsFreeAt reports how many IO slots queue q has left in the step
// containing t.
func (d *Device) SlotsFreeAt(q int, t sim.Time) int { return d.freeAt(q, d.StepOf(t)) }

// prune drops bookkeeping for steps far behind the current one (same
// policy as pdamdev: devices run for millions of steps, the maps must not).
func (d *Device) prune(q int, current int64) {
	qs := &d.queues[q]
	if current-qs.pruneBelow < 4096 || len(qs.usage) < 4096 {
		return
	}
	for s := range qs.usage {
		if s < current {
			delete(qs.usage, s)
		}
	}
	qs.pruneBelow = current
	// The active map is shared; trim it against the laggiest queue.
	floor := current
	for i := range d.queues {
		if d.queues[i].pruneBelow < floor {
			floor = d.queues[i].pruneBelow
		}
	}
	for s := range d.active {
		if s < floor {
			delete(d.active, s)
		}
	}
}

// Storage adapts the device to the storage.Device interface: an IO of any
// size costs ceil(size/B) block IOs on the queue its address (or op) routes
// to. It drops in anywhere pdamdev/ssd do — engine, FaultStore, server.
type Storage struct {
	dev      *Device
	capacity int64
}

// Storage wraps the device as a storage.Device with the given byte capacity.
func (d *Device) Storage(capacity int64) *Storage {
	if capacity <= 0 {
		panic("mqssd: invalid capacity")
	}
	return &Storage{dev: d, capacity: capacity}
}

// Access implements storage.Device.
func (s *Storage) Access(now sim.Time, op storage.Op, off, size int64) sim.Time {
	n := int((size + s.dev.cfg.BlockBytes - 1) / s.dev.cfg.BlockBytes)
	return s.dev.Submit(s.dev.QueueFor(op, off), now, n)
}

// Capacity implements storage.Device.
func (s *Storage) Capacity() int64 { return s.capacity }

// Name implements storage.Device.
func (s *Storage) Name() string {
	c := s.dev.cfg
	name := fmt.Sprintf("mq(Q=%d,Pq=%d,D=%d,beta=%g,B=%d", c.Queues, c.PerQueueP, c.QueueDepth, c.Interference, c.BlockBytes)
	if c.WriteQueue {
		name += ",wq"
	}
	return name + ")"
}

// ParallelismHint reports the device's realizable IOs per step with every
// read queue active — the honest batch size for a Lemma 13-style scheduler
// (the raw Queues·PerQueueP would overcommit it).
func (s *Storage) ParallelismHint() int { return s.dev.model.EffectiveParallelism() }

// QueueHint reports the read-queue topology for a queue-aware scheduler:
// the number of read queues and the per-queue outstanding target — the
// queue depth (capped by the slot count), not the interference-diluted
// per-step service. A scheduler keeps min(D, Pq) IOs in flight per queue to
// cover its service each step; ParallelismHint ≤ queues × perQueue ≤ the
// raw slot count.
func (s *Storage) QueueHint() (queues, perQueue int) {
	per := s.dev.cfg.QueueDepth
	if s.dev.cfg.PerQueueP < per {
		per = s.dev.cfg.PerQueueP
	}
	return s.dev.cfg.Queues, per
}

// Params exposes the exact device configuration; the observability layer's
// accountant reads it instead of fitting (obs.ExactMQ) — this device IS the
// multi-queue model.
func (s *Storage) Params() Config { return s.dev.cfg }

// Device returns the underlying queue-level device.
func (s *Storage) Device() *Device { return s.dev }

// Reboot implements storage.Rebooter: a power cycle forgets all in-flight
// queue state (the FaultStore's crash path calls this).
func (s *Storage) Reboot() {
	for i := range s.dev.queues {
		s.dev.queues[i].usage = make(map[int64]int)
		s.dev.queues[i].pruneBelow = 0
	}
	s.dev.active = make(map[int64]int)
}
