// Structural invariant checking for the Bε-tree, used by tests and the
// property-based suites. Check walks the whole tree (loading every node
// fully) and verifies the invariants the analyses rely on.

package betree

import (
	"fmt"

	"iomodels/internal/kv"
)

// Check verifies tree-wide invariants and returns the first violation:
//
//   - pivots and entries are strictly sorted and within their key ranges;
//   - buffered messages sit in the buffer of the child that covers them,
//     in (key, seq) order;
//   - per-slot capacities hold (Slotted) or node capacity holds (Packed);
//   - parents' route copies match each child's own routing info (Slotted);
//   - all leaves are at height 0 and node heights decrease by one per level;
//   - fanout never exceeds MaxFanout between operations;
//   - byte accounting (leafBytes, buffer bytes) matches content.
func (t *Tree) Check() error {
	n := t.rootN
	return t.checkNode(t.root, n, nil, nil, n.height)
}

func (t *Tree) checkNode(off int64, n *node, lo, hi []byte, height int) error {
	if n == nil {
		n = t.ensureFull(off)
		defer t.unpin(off)
	}
	if !n.full {
		return fmt.Errorf("node %d: not full after ensureFull", off)
	}
	if n.height != height {
		return fmt.Errorf("node %d: height %d, expected %d", off, n.height, height)
	}
	if n.leaf != (height == 0) {
		return fmt.Errorf("node %d: leaf flag %v at height %d", off, n.leaf, height)
	}
	inRange := func(k []byte) bool {
		return (lo == nil || kv.Compare(k, lo) >= 0) && (hi == nil || kv.Compare(k, hi) < 0)
	}
	if n.leaf {
		bytes := 0
		for i, e := range n.entries {
			if i > 0 && kv.Compare(n.entries[i-1].Key, e.Key) >= 0 {
				return fmt.Errorf("leaf %d: entries out of order at %d", off, i)
			}
			if !inRange(e.Key) {
				return fmt.Errorf("leaf %d: key out of range", off)
			}
			bytes += e.Size()
		}
		if bytes != n.leafBytes {
			return fmt.Errorf("leaf %d: leafBytes %d, actual %d", off, n.leafBytes, bytes)
		}
		if n.leafBytes > t.cfg.leafCapBytes() {
			return fmt.Errorf("leaf %d: over capacity: %d > %d", off, n.leafBytes, t.cfg.leafCapBytes())
		}
		if len(n.cuts) < 2 || n.cuts[0] != 0 || n.cuts[len(n.cuts)-1] != len(n.entries) {
			return fmt.Errorf("leaf %d: malformed cuts %v", off, n.cuts)
		}
		for i := 1; i < len(n.cuts); i++ {
			if n.cuts[i] < n.cuts[i-1] {
				return fmt.Errorf("leaf %d: decreasing cuts %v", off, n.cuts)
			}
		}
		return nil
	}

	if len(n.children) < 1 || len(n.children) != len(n.pivots)+1 || len(n.children) != len(n.bufs) {
		return fmt.Errorf("node %d: inconsistent children/pivots/bufs: %d/%d/%d",
			off, len(n.children), len(n.pivots), len(n.bufs))
	}
	if len(n.children) > t.cfg.MaxFanout {
		return fmt.Errorf("node %d: fanout %d exceeds %d", off, len(n.children), t.cfg.MaxFanout)
	}
	if t.cfg.Layout == Slotted && len(n.routes) != len(n.children) {
		return fmt.Errorf("node %d: %d routes for %d children", off, len(n.routes), len(n.children))
	}
	for i, p := range n.pivots {
		if i > 0 && kv.Compare(n.pivots[i-1], p) >= 0 {
			return fmt.Errorf("node %d: pivots out of order at %d", off, i)
		}
		if !inRange(p) {
			return fmt.Errorf("node %d: pivot out of range", off)
		}
	}
	if t.overfullNode(n) {
		return fmt.Errorf("node %d: overfull between operations", off)
	}
	for i := range n.bufs {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.pivots[i-1]
		}
		if i < len(n.pivots) {
			chi = n.pivots[i]
		}
		bytes := 0
		for j, m := range n.bufs[i].msgs {
			if j > 0 {
				c := kv.Compare(n.bufs[i].msgs[j-1].Key, m.Key)
				if c > 0 || (c == 0 && n.bufs[i].msgs[j-1].Seq >= m.Seq) {
					return fmt.Errorf("node %d buf %d: messages out of (key,seq) order at %d", off, i, j)
				}
			}
			if (clo != nil && kv.Compare(m.Key, clo) < 0) || (chi != nil && kv.Compare(m.Key, chi) >= 0) {
				return fmt.Errorf("node %d buf %d: message outside child range", off, i)
			}
			bytes += m.Size()
		}
		if bytes != n.bufs[i].bytes {
			return fmt.Errorf("node %d buf %d: bytes %d, actual %d", off, i, n.bufs[i].bytes, bytes)
		}
	}
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.pivots[i-1]
		}
		if i < len(n.pivots) {
			chi = n.pivots[i]
		}
		child := t.ensureFull(c)
		if t.cfg.Layout == Slotted {
			if err := routesEqual(n.routes[i], child.ownRoute()); err != nil {
				t.unpin(c)
				return fmt.Errorf("node %d child %d: stale route copy: %v", off, i, err)
			}
		}
		err := t.checkNode(c, child, clo, chi, height-1)
		t.unpin(c)
		if err != nil {
			return err
		}
	}
	return nil
}

func routesEqual(a, b route) error {
	if len(a.keys) != len(b.keys) || len(a.ptrs) != len(b.ptrs) {
		return fmt.Errorf("shape %d/%d vs %d/%d", len(a.keys), len(a.ptrs), len(b.keys), len(b.ptrs))
	}
	for i := range a.keys {
		if kv.Compare(a.keys[i], b.keys[i]) != 0 {
			return fmt.Errorf("key %d differs", i)
		}
	}
	for i := range a.ptrs {
		if a.ptrs[i] != b.ptrs[i] {
			return fmt.Errorf("ptr %d differs", i)
		}
	}
	return nil
}
