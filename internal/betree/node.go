// In-memory node representation and on-disk serialization for the Bε-tree.
//
// A node object may be Full (everything decoded and paid for) or partial
// (only some slots resident). Queries in SlotOnly/MetaPlusSlot modes create
// partial nodes by reading single slots; all mutations (message inserts,
// flushes, splits, merges) operate on Full nodes, so a dirty node is always
// Full and write-back always rewrites the whole extent, exactly as the
// paper's flush analysis assumes.

package betree

import (
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"iomodels/internal/kv"
)

const (
	magicLeaf     = 0xE1
	magicInternal = 0xE2
)

func logf(x float64) float64 { return math.Log(x) }

// route is the routing information for one child, stored in the parent
// (Theorem 9's "pivots in the parent"): for an internal child, its pivot
// keys and child pointers; for a leaf child, its basement boundary keys
// (ptrs nil).
type route struct {
	keys [][]byte
	ptrs []int64
}

// slotIndex returns which child/basement of the routed node covers key.
func (r route) slotIndex(key []byte) int {
	return sort.Search(len(r.keys), func(i int) bool {
		return kv.Compare(key, r.keys[i]) < 0
	})
}

// bytes returns the serialized size of the route.
func (r route) bytes() int {
	s := 8
	for _, k := range r.keys {
		s += 4 + len(k)
	}
	s += len(r.ptrs) * ptrBytes
	return s
}

// clone deep-copies r (routes are copied from child to parent, which then
// evolve independently until the next sync).
func (r route) clone() route {
	out := route{keys: make([][]byte, len(r.keys))}
	for i, k := range r.keys {
		out.keys[i] = append([]byte(nil), k...)
	}
	if r.ptrs != nil {
		out.ptrs = append([]int64(nil), r.ptrs...)
	}
	return out
}

// buffer holds the messages destined for one child, sorted by (key, seq).
type buffer struct {
	msgs  []kv.Message
	bytes int
}

// find returns the range [lo, hi) of messages for key.
func (b *buffer) find(key []byte) (int, int) {
	lo := sort.Search(len(b.msgs), func(i int) bool {
		return kv.Compare(b.msgs[i].Key, key) >= 0
	})
	hi := lo
	for hi < len(b.msgs) && kv.Compare(b.msgs[hi].Key, key) == 0 {
		hi++
	}
	return lo, hi
}

// add inserts m in (key, seq) order, coalescing: an absorbing message (Put
// or Tombstone) supersedes all earlier messages for the same key in this
// buffer.
func (b *buffer) add(m kv.Message) {
	lo, hi := b.find(m.Key)
	if m.Kind != kv.Upsert && hi > lo {
		for _, old := range b.msgs[lo:hi] {
			b.bytes -= old.Size()
		}
		b.msgs = append(b.msgs[:lo], b.msgs[hi:]...)
		hi = lo
	}
	b.msgs = append(b.msgs, kv.Message{})
	copy(b.msgs[hi+1:], b.msgs[hi:])
	b.msgs[hi] = m
	b.bytes += m.Size()
}

// node is a decoded Bε-tree node.
type node struct {
	leaf   bool
	height int // 0 = leaf

	// Internal-node state.
	children []int64
	pivots   [][]byte // len(children)-1 separators
	bufs     []buffer // per-child message buffers
	routes   []route  // per-child routing copies (Slotted layout only)

	// Leaf state.
	entries   []kv.Entry
	leafBytes int   // serialized bytes of entries
	cuts      []int // basement partition: basement i = entries[cuts[i]:cuts[i+1]]

	// rrCursor is the round-robin flush cursor (in-memory only; a fresh
	// cursor after a reload is harmless).
	rrCursor int

	// Residency: a Full node has every field above populated and paid for.
	// A partial node (query path only) instead carries the slots it has
	// paid for in the partial map; its full-content fields are nil.
	full    bool
	partial map[int]slotPayload // slot index -> decoded content (when !full)
	charged int64               // bytes charged to the cache
}

func newLeafNode() *node {
	n := &node{leaf: true, full: true}
	n.recut(1)
	return n
}

func newInternalNode(height int) *node {
	return &node{height: height, full: true}
}

func newPartialNode(leaf bool, height int) *node {
	return &node{leaf: leaf, height: height, partial: map[int]slotPayload{}}
}

// findChild routes key within the node's own pivots (Full internal nodes).
func (n *node) findChild(key []byte) int {
	return sort.Search(len(n.pivots), func(i int) bool {
		return kv.Compare(key, n.pivots[i]) < 0
	})
}

// findEntry locates key among the leaf entries.
func (n *node) findEntry(key []byte) (int, bool) {
	i := sort.Search(len(n.entries), func(i int) bool {
		return kv.Compare(n.entries[i].Key, key) >= 0
	})
	if i < len(n.entries) && kv.Compare(n.entries[i].Key, key) == 0 {
		return i, true
	}
	return i, false
}

// bufBytesTotal sums buffered message bytes.
func (n *node) bufBytesTotal() int {
	s := 0
	for i := range n.bufs {
		s += n.bufs[i].bytes
	}
	return s
}

// metaBytes returns the serialized size of the meta region.
func (n *node) metaBytes() int {
	s := metaBase
	if n.leaf {
		return s
	}
	s += len(n.children) * ptrBytes
	for _, p := range n.pivots {
		s += 4 + len(p)
	}
	return s
}

// recut repartitions the leaf's entries into nb basements, balanced by
// bytes, deterministically. Called after every leaf mutation so that the
// encoded image and the parent's boundary copy stay in sync.
func (n *node) recut(nb int) {
	if nb < 1 {
		nb = 1
	}
	n.cuts = n.cuts[:0]
	n.cuts = append(n.cuts, 0)
	total := n.leafBytes
	acc := 0
	idx := 0
	for b := 1; b < nb; b++ {
		target := total * b / nb
		for idx < len(n.entries) && acc < target {
			acc += n.entries[idx].Size()
			idx++
		}
		n.cuts = append(n.cuts, idx)
	}
	n.cuts = append(n.cuts, len(n.entries))
}

// boundaries returns the leaf's basement boundary keys (first key of each
// basement after the first): the leaf's "pivot set" stored in its parent.
func (n *node) boundaries() route {
	var r route
	for _, c := range n.cuts[1 : len(n.cuts)-1] {
		if c < len(n.entries) {
			r.keys = append(r.keys, append([]byte(nil), n.entries[c].Key...))
		} else if len(n.entries) > 0 {
			// Degenerate trailing cut (empty last basements): the boundary
			// must sort strictly ABOVE every real key, or the last entry
			// would route into an empty basement. Appending a zero byte to
			// the last key gives the smallest such boundary.
			last := n.entries[len(n.entries)-1].Key
			b := make([]byte, len(last)+1)
			copy(b, last)
			r.keys = append(r.keys, b)
		} else {
			r.keys = append(r.keys, []byte{0xff})
		}
	}
	return r
}

// ownRoute returns the node's routing info as its parent should store it.
func (n *node) ownRoute() route {
	if n.leaf {
		return n.boundaries()
	}
	r := route{keys: make([][]byte, len(n.pivots)), ptrs: append([]int64(nil), n.children...)}
	for i, p := range n.pivots {
		r.keys[i] = append([]byte(nil), p...)
	}
	return r
}

// ---------------------------------------------------------------------------
// Serialization

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func appendCRC(e *kv.Enc, start int) {
	e.U32(crcOf(e.Buf[start:]))
}

func checkCRC(d *kv.Dec, start int) error {
	payload := d.Buf[start:d.Off]
	want := d.U32()
	if d.Err != nil {
		return d.Err
	}
	if crcOf(payload) != want {
		return fmt.Errorf("betree: checksum mismatch: extent torn or corrupt")
	}
	return nil
}

func encodeRoute(e *kv.Enc, r route) {
	e.U32(uint32(len(r.keys)))
	for _, k := range r.keys {
		e.Bytes(k)
	}
	e.U32(uint32(len(r.ptrs)))
	for _, p := range r.ptrs {
		e.U64(uint64(p))
	}
}

func decodeRoute(d *kv.Dec) route {
	var r route
	nk := int(d.U32())
	for i := 0; i < nk && d.Err == nil; i++ {
		r.keys = append(r.keys, d.Bytes())
	}
	np := int(d.U32())
	for i := 0; i < np && d.Err == nil; i++ {
		r.ptrs = append(r.ptrs, int64(d.U64()))
	}
	return r
}

// encode serializes a Full node into an extent of cfg.NodeBytes.
func (n *node) encode(cfg Config) []byte {
	if !n.full {
		panic("betree: encoding a partial node")
	}
	if cfg.Layout == Slotted {
		return n.encodeSlotted(cfg)
	}
	return n.encodePacked(cfg)
}

func (n *node) encodePacked(cfg Config) []byte {
	var e kv.Enc
	e.Buf = make([]byte, 0, cfg.NodeBytes)
	if n.leaf {
		e.U8(magicLeaf)
		e.U8(0)
		e.U32(uint32(len(n.entries)))
		for _, ent := range n.entries {
			e.Entry(ent)
		}
	} else {
		e.U8(magicInternal)
		e.U8(uint8(n.height))
		e.U32(uint32(len(n.children)))
		for _, c := range n.children {
			e.U64(uint64(c))
		}
		for _, p := range n.pivots {
			e.Bytes(p)
		}
		for i := range n.bufs {
			e.U32(uint32(len(n.bufs[i].msgs)))
			for _, m := range n.bufs[i].msgs {
				e.Message(m)
			}
		}
	}
	appendCRC(&e, 0)
	if len(e.Buf) > cfg.NodeBytes {
		panic(fmt.Sprintf("betree: packed node overflows extent: %d > %d", len(e.Buf), cfg.NodeBytes))
	}
	buf := make([]byte, cfg.NodeBytes)
	copy(buf, e.Buf)
	return buf
}

func (n *node) encodeSlotted(cfg Config) []byte {
	buf := make([]byte, cfg.NodeBytes)
	// Meta region.
	var e kv.Enc
	if n.leaf {
		e.U8(magicLeaf)
		e.U8(0)
		e.U32(uint32(len(n.cuts) - 1))
	} else {
		e.U8(magicInternal)
		e.U8(uint8(n.height))
		e.U32(uint32(len(n.children)))
		for _, c := range n.children {
			e.U64(uint64(c))
		}
		for _, p := range n.pivots {
			e.Bytes(p)
		}
	}
	appendCRC(&e, 0)
	if len(e.Buf) > cfg.metaCap() {
		panic(fmt.Sprintf("betree: meta region overflows: %d > %d", len(e.Buf), cfg.metaCap()))
	}
	copy(buf, e.Buf)
	// Slots.
	stride := cfg.slotStride()
	nslots := len(n.children)
	if n.leaf {
		nslots = len(n.cuts) - 1
	}
	for i := 0; i < nslots; i++ {
		var s kv.Enc
		if n.leaf {
			ents := n.entries[n.cuts[i]:n.cuts[i+1]]
			s.U32(uint32(len(ents)))
			for _, ent := range ents {
				s.Entry(ent)
			}
		} else {
			encodeRoute(&s, n.routes[i])
			s.U32(uint32(len(n.bufs[i].msgs)))
			for _, m := range n.bufs[i].msgs {
				s.Message(m)
			}
		}
		appendCRC(&s, 0)
		if len(s.Buf) > stride {
			panic(fmt.Sprintf("betree: slot %d overflows stride: %d > %d", i, len(s.Buf), stride))
		}
		copy(buf[cfg.metaCap()+i*stride:], s.Buf)
	}
	return buf
}

// decodeFull parses a whole extent into a Full node.
func decodeFull(cfg Config, buf []byte) (*node, error) {
	if cfg.Layout == Packed {
		return decodePacked(buf)
	}
	return decodeSlotted(cfg, buf)
}

func decodePacked(buf []byte) (*node, error) {
	d := kv.Dec{Buf: buf}
	n := &node{full: true}
	switch d.U8() {
	case magicLeaf:
		n.leaf = true
		d.U8()
		count := int(d.U32())
		if count > len(buf) {
			return nil, fmt.Errorf("betree: implausible entry count %d", count)
		}
		for i := 0; i < count && d.Err == nil; i++ {
			ent := d.Entry()
			n.entries = append(n.entries, ent)
			n.leafBytes += ent.Size()
		}
		n.recut(1)
	case magicInternal:
		n.height = int(d.U8())
		count := int(d.U32())
		if count < 1 || count > len(buf)/ptrBytes {
			return nil, fmt.Errorf("betree: implausible child count %d", count)
		}
		for i := 0; i < count && d.Err == nil; i++ {
			n.children = append(n.children, int64(d.U64()))
		}
		for i := 0; i < count-1 && d.Err == nil; i++ {
			n.pivots = append(n.pivots, d.Bytes())
		}
		n.bufs = make([]buffer, count)
		for i := 0; i < count && d.Err == nil; i++ {
			mc := int(d.U32())
			for j := 0; j < mc && d.Err == nil; j++ {
				m := d.Message()
				n.bufs[i].msgs = append(n.bufs[i].msgs, m)
				n.bufs[i].bytes += m.Size()
			}
		}
	default:
		return nil, fmt.Errorf("betree: bad node magic 0x%02x", buf[0])
	}
	if err := checkCRC(&d, 0); err != nil {
		return nil, err
	}
	return n, nil
}

// decodeMeta parses only the meta region of a Slotted extent.
func decodeMeta(cfg Config, buf []byte) (*node, int, error) {
	d := kv.Dec{Buf: buf}
	n := &node{}
	nslots := 0
	switch d.U8() {
	case magicLeaf:
		n.leaf = true
		d.U8()
		nslots = int(d.U32())
	case magicInternal:
		n.height = int(d.U8())
		count := int(d.U32())
		nslots = count
		for i := 0; i < count && d.Err == nil; i++ {
			n.children = append(n.children, int64(d.U64()))
		}
		for i := 0; i < count-1 && d.Err == nil; i++ {
			n.pivots = append(n.pivots, d.Bytes())
		}
	default:
		return nil, 0, fmt.Errorf("betree: bad node magic 0x%02x", buf[0])
	}
	if err := checkCRC(&d, 0); err != nil {
		return nil, 0, err
	}
	return n, nslots, nil
}

// slotPayload is a decoded slot: for an internal node, the child's route and
// the buffered messages; for a leaf, the basement entries.
type slotPayload struct {
	route   route
	msgs    []kv.Message
	entries []kv.Entry
	bytes   int // serialized content size
}

// decodeSlot parses one slot's bytes (already sliced to the stride).
func decodeSlot(leaf bool, buf []byte) (slotPayload, error) {
	d := kv.Dec{Buf: buf}
	var p slotPayload
	if leaf {
		count := int(d.U32())
		for i := 0; i < count && d.Err == nil; i++ {
			p.entries = append(p.entries, d.Entry())
		}
	} else {
		p.route = decodeRoute(&d)
		count := int(d.U32())
		for i := 0; i < count && d.Err == nil; i++ {
			p.msgs = append(p.msgs, d.Message())
		}
	}
	p.bytes = d.Off
	if err := checkCRC(&d, 0); err != nil {
		return slotPayload{}, err
	}
	return p, nil
}

func decodeSlotted(cfg Config, buf []byte) (*node, error) {
	n, nslots, err := decodeMeta(cfg, buf)
	if err != nil {
		return nil, err
	}
	stride := cfg.slotStride()
	if n.leaf {
		n.cuts = []int{0}
		for i := 0; i < nslots; i++ {
			p, err := decodeSlot(true, buf[cfg.metaCap()+i*stride:cfg.metaCap()+(i+1)*stride])
			if err != nil {
				return nil, err
			}
			n.entries = append(n.entries, p.entries...)
			for _, e := range p.entries {
				n.leafBytes += e.Size()
			}
			n.cuts = append(n.cuts, len(n.entries))
		}
	} else {
		n.bufs = make([]buffer, nslots)
		n.routes = make([]route, nslots)
		for i := 0; i < nslots; i++ {
			p, err := decodeSlot(false, buf[cfg.metaCap()+i*stride:cfg.metaCap()+(i+1)*stride])
			if err != nil {
				return nil, err
			}
			n.routes[i] = p.route
			n.bufs[i].msgs = p.msgs
			for _, m := range p.msgs {
				n.bufs[i].bytes += m.Size()
			}
		}
	}
	n.full = true
	return n, nil
}

// chargeSize returns the cache charge for the node's resident content.
func (n *node) chargeSize(cfg Config) int64 {
	if n.full {
		s := n.metaBytes()
		if n.leaf {
			s += n.leafBytes + slotHeader*maxi(1, len(n.cuts)-1)
		} else {
			s += n.bufBytesTotal()
			for i := range n.routes {
				s += n.routes[i].bytes() + slotHeader
			}
		}
		return int64(s)
	}
	s := metaBase
	for _, p := range n.partial {
		s += slotHeader + p.bytes
	}
	return int64(s)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
