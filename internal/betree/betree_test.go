package betree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
	"iomodels/internal/storage"
)

// configs is the test matrix of node organizations.
func configs(nodeBytes int, cacheBytes int64) map[string]Config {
	base := Config{
		NodeBytes:     nodeBytes,
		MaxFanout:     8,
		MaxKeyBytes:   32,
		MaxValueBytes: 128,
	}
	_ = cacheBytes
	packed := base
	packed.Layout = Packed
	packed.QueryMode = WholeNode
	slottedWhole := base
	slottedWhole.Layout = Slotted
	slottedWhole.QueryMode = WholeNode
	metaSlot := base
	metaSlot.Layout = Slotted
	metaSlot.QueryMode = MetaPlusSlot
	slotOnly := base.Optimized()
	return map[string]Config{
		"packed":        packed,
		"slotted-whole": slottedWhole,
		"meta+slot":     metaSlot,
		"slot-only":     slotOnly,
	}
}

func newTestTree(t *testing.T, cfg Config, cacheBytes ...int64) *Tree {
	t.Helper()
	clk := sim.New()
	budget := int64(1 << 20)
	if len(cacheBytes) > 0 {
		budget = cacheBytes[0]
	}
	eng := engine.New(engine.Config{CacheBytes: budget, Shards: 1},
		hdd.NewDeterministic(hdd.DefaultProfile()), clk)
	tree, err := New(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestEmptyTree(t *testing.T) {
	for name, cfg := range configs(64<<10, 1<<20) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg)
			if _, ok := tree.Get(key(1)); ok {
				t.Fatal("found key in empty tree")
			}
			if tree.Items() != 0 || tree.Height() != 1 {
				t.Fatalf("items=%d height=%d", tree.Items(), tree.Height())
			}
		})
	}
}

func TestPutGetThroughRootLeaf(t *testing.T) {
	for name, cfg := range configs(64<<10, 1<<20) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg)
			for i := 0; i < 50; i++ {
				tree.Put(key(i), value(i))
			}
			for i := 0; i < 50; i++ {
				v, ok := tree.Get(key(i))
				if !ok || !bytes.Equal(v, value(i)) {
					t.Fatalf("Get(%d) = %q, %v", i, v, ok)
				}
			}
		})
	}
}

func TestGrowthThroughFlushes(t *testing.T) {
	for name, cfg := range configs(16<<10, 1<<20) {
		t.Run(name, func(t *testing.T) {
			if cfg.Layout == Slotted {
				cfg.MaxFanout = 4 // small slots force deep flushing
			}
			tree := newTestTree(t, cfg)
			const n = 4000
			for i := 0; i < n; i++ {
				tree.Put(key(i), value(i))
			}
			if tree.Height() < 2 {
				t.Fatalf("height = %d, tree never grew", tree.Height())
			}
			if tree.Flushes == 0 {
				t.Fatal("no flushes happened")
			}
			if err := tree.Check(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				v, ok := tree.Get(key(i))
				if !ok || !bytes.Equal(v, value(i)) {
					t.Fatalf("Get(%d) lost after flushes: %v", i, ok)
				}
			}
			// Buffered inserts are not counted until settled.
			if tree.Items() > n {
				t.Fatalf("items = %d > inserted %d", tree.Items(), n)
			}
			tree.Settle()
			if tree.Items() != n {
				t.Fatalf("items = %d after Settle, inserted %d", tree.Items(), n)
			}
			if err := tree.Check(); err != nil {
				t.Fatalf("after Settle: %v", err)
			}
		})
	}
}

func TestDeleteViaTombstones(t *testing.T) {
	for name, cfg := range configs(16<<10, 1<<20) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg)
			const n = 2000
			for i := 0; i < n; i++ {
				tree.Put(key(i), value(i))
			}
			for i := 0; i < n; i += 2 {
				tree.Delete(key(i))
			}
			for i := 0; i < n; i++ {
				_, ok := tree.Get(key(i))
				if want := i%2 == 1; ok != want {
					t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
				}
			}
			if err := tree.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUpserts(t *testing.T) {
	for name, cfg := range configs(16<<10, 1<<20) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg)
			// Interleave upserts to the same counters with enough other
			// traffic to push messages down the tree.
			for round := 0; round < 50; round++ {
				for c := 0; c < 10; c++ {
					tree.Upsert(key(c), int64(c+1))
				}
				for i := 0; i < 100; i++ {
					tree.Put(key(1000+round*100+i), value(i))
				}
			}
			for c := 0; c < 10; c++ {
				v, ok := tree.Get(key(c))
				if !ok {
					t.Fatalf("counter %d missing", c)
				}
				got := int64(binary.BigEndian.Uint64(v))
				want := int64(50 * (c + 1))
				if got != want {
					t.Fatalf("counter %d = %d, want %d", c, got, want)
				}
			}
			if err := tree.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUpsertThenDeleteThenUpsert(t *testing.T) {
	cfg := configs(16<<10, 1<<20)["slot-only"]
	tree := newTestTree(t, cfg)
	tree.Upsert(key(1), 10)
	tree.Delete(key(1))
	tree.Upsert(key(1), 7)
	v, ok := tree.Get(key(1))
	if !ok || int64(binary.BigEndian.Uint64(v)) != 7 {
		t.Fatalf("counter = %v %v, want 7", v, ok)
	}
}

func TestPutOverwriteNewestWins(t *testing.T) {
	for name, cfg := range configs(16<<10, 1<<20) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg)
			// Push an old version deep, then overwrite near the root.
			tree.Put(key(42), []byte("old"))
			for i := 0; i < 3000; i++ {
				tree.Put(key(10000+i), value(i))
			}
			tree.Put(key(42), []byte("new"))
			v, ok := tree.Get(key(42))
			if !ok || string(v) != "new" {
				t.Fatalf("got %q, %v", v, ok)
			}
		})
	}
}

func TestScanMergesBuffersAndLeaves(t *testing.T) {
	for name, cfg := range configs(16<<10, 1<<20) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg)
			const n = 3000
			for i := 0; i < n; i++ {
				tree.Put(key(i), value(i))
			}
			// Recent updates still sitting in buffers must appear in scans.
			tree.Put(key(100), []byte("fresh"))
			tree.Delete(key(101))
			var got []string
			tree.Scan(key(95), key(105), func(k, v []byte) bool {
				got = append(got, fmt.Sprintf("%s=%s", k, v))
				return true
			})
			want := []string{}
			for i := 95; i < 105; i++ {
				switch i {
				case 100:
					want = append(want, string(key(i))+"=fresh")
				case 101: // deleted
				default:
					want = append(want, fmt.Sprintf("%s=%s", key(i), value(i)))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("scan = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("scan[%d] = %s, want %s", i, got[i], want[i])
				}
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	cfg := configs(16<<10, 1<<20)["slot-only"]
	tree := newTestTree(t, cfg)
	for i := 0; i < 1000; i++ {
		tree.Put(key(i), value(i))
	}
	ents := tree.ScanN(key(500), 5)
	if len(ents) != 5 || string(ents[0].Key) != string(key(500)) {
		t.Fatalf("ScanN = %d entries, first %q", len(ents), ents[0].Key)
	}
}

// TestRandomOpsAgainstModel drives every configuration with a random mix of
// puts, deletes, upserts and gets, mirrored into a model map.
func TestRandomOpsAgainstModel(t *testing.T) {
	for name, cfg := range configs(16<<10, 128<<10) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg)
			model := map[string][]byte{}
			rng := stats.NewRNG(9999)
			const ops = 20000
			for i := 0; i < ops; i++ {
				id := int(rng.Intn(1500))
				k := key(id)
				ks := string(k)
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					v := []byte(fmt.Sprintf("v%d-%d", id, i))
					tree.Put(k, v)
					model[ks] = v
				case 4, 5:
					tree.Delete(k)
					delete(model, ks)
				case 6:
					tree.Upsert(k, int64(id))
					// Mirror kv.Message upsert semantics: any existing
					// 8-byte value is treated as a counter.
					var cur int64
					if v, ok := model[ks]; ok && len(v) == 8 {
						cur = int64(binary.BigEndian.Uint64(v))
					}
					var b [8]byte
					binary.BigEndian.PutUint64(b[:], uint64(cur+int64(id)))
					model[ks] = b[:]
				default:
					v, ok := tree.Get(k)
					mv, mok := model[ks]
					if ok != mok || (ok && !bytes.Equal(v, mv)) {
						t.Fatalf("op %d: Get(%d) = %q,%v; model %q,%v", i, id, v, ok, mv, mok)
					}
				}
				if i%5000 == 4999 {
					if err := tree.Check(); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
				}
			}
			// Final full-scan agreement.
			var wantKeys []string
			for k := range model {
				wantKeys = append(wantKeys, k)
			}
			sort.Strings(wantKeys)
			var gotKeys []string
			tree.Scan(nil, nil, func(k, v []byte) bool {
				gotKeys = append(gotKeys, string(k))
				if !bytes.Equal(model[string(k)], v) {
					t.Fatalf("scan value mismatch at %s", k)
				}
				return true
			})
			if len(gotKeys) != len(wantKeys) {
				t.Fatalf("scan length %d != model %d", len(gotKeys), len(wantKeys))
			}
			for i := range gotKeys {
				if gotKeys[i] != wantKeys[i] {
					t.Fatalf("scan[%d] = %s, want %s", i, gotKeys[i], wantKeys[i])
				}
			}
		})
	}
}

// TestSmallCacheEviction forces constant eviction so every path round-trips
// through serialization, in every layout.
func TestSmallCacheEviction(t *testing.T) {
	for name, cfg := range configs(16<<10, 64<<10) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg, 64<<10)
			const n = 3000
			for i := 0; i < n; i++ {
				tree.Put(key(i), value(i))
			}
			for i := 0; i < n; i++ {
				v, ok := tree.Get(key(i))
				if !ok || !bytes.Equal(v, value(i)) {
					t.Fatalf("Get(%d) failed after eviction", i)
				}
			}
			st := tree.pager().Stats()
			if st.Evictions == 0 || st.Writebacks == 0 {
				t.Fatalf("cache never spilled: %+v", st)
			}
			if err := tree.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSlotOnlyQueryIOShape verifies the Theorem 9 claim operationally: a
// cold point query in SlotOnly mode issues exactly one IO per level below
// the root, each of one slot stride (~B/F), not whole nodes.
func TestSlotOnlyQueryIOShape(t *testing.T) {
	cfg := configs(32<<10, 1<<20)["slot-only"]
	tree := newTestTree(t, cfg)
	const n = 20000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	levels := tree.Height()
	if levels < 3 {
		t.Fatalf("tree too shallow (%d) for the IO-shape test", levels)
	}
	tree.pager().EvictAll(tree.owner)
	tr := &storage.Trace{}
	tree.eng.SetTrace(tr)
	tree.Get(key(n / 2))
	tree.eng.SetTrace(nil)
	// Root is pinned, so expect height-1 IOs.
	if got, want := tr.Len(), levels-1; got != want {
		t.Fatalf("cold query issued %d IOs, want %d (one per level below root): %+v", got, want, tr.Snapshot())
	}
	stride := int64(cfg.slotStride())
	for _, r := range tr.Snapshot() {
		if r.Op != storage.Read || r.Size != stride {
			t.Fatalf("query IO %+v is not a single slot read of %d", r, stride)
		}
	}
}

// TestWholeNodeQueryIOShape is the contrast: the naive organization reads
// whole nodes.
func TestWholeNodeQueryIOShape(t *testing.T) {
	cfg := configs(32<<10, 1<<20)["packed"]
	tree := newTestTree(t, cfg)
	const n = 20000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	levels := tree.Height()
	tree.pager().EvictAll(tree.owner)
	tr := &storage.Trace{}
	tree.eng.SetTrace(tr)
	tree.Get(key(n / 2))
	tree.eng.SetTrace(nil)
	if got, want := tr.Len(), levels-1; got != want {
		t.Fatalf("cold query issued %d IOs, want %d", got, want)
	}
	for _, r := range tr.Snapshot() {
		if r.Size != int64(cfg.NodeBytes) {
			t.Fatalf("query IO %+v is not a whole-node read of %d", r, cfg.NodeBytes)
		}
	}
}

func TestFlushPersistsEverything(t *testing.T) {
	for name, cfg := range configs(16<<10, 1<<20) {
		t.Run(name, func(t *testing.T) {
			tree := newTestTree(t, cfg)
			for i := 0; i < 2000; i++ {
				tree.Put(key(i), value(i))
			}
			tree.Flush()
			tree.pager().EvictAll(tree.owner)
			for i := 0; i < 2000; i++ {
				v, ok := tree.Get(key(i))
				if !ok || !bytes.Equal(v, value(i)) {
					t.Fatalf("lost key %d across flush+evict", i)
				}
			}
		})
	}
}

func TestWriteAmpMuchLowerThanBTreeStyle(t *testing.T) {
	// Sanity: under random inserts with a small cache, bytes written per
	// logical byte must be far below the node size in entries.
	cfg := configs(16<<10, 64<<10)["slot-only"]
	tree := newTestTree(t, cfg)
	const n = 5000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	c := tree.eng.Counters()
	wa := float64(c.BytesWritten) / float64(tree.LogicalBytesInserted)
	if wa <= 0 {
		t.Fatal("no write amplification measured")
	}
	// A B-tree rewriting a 16KiB node per ~20-byte update would have
	// WA in the hundreds; buffering must keep the Bε-tree far below that.
	if wa > 100 {
		t.Fatalf("write amplification %.1f implausibly high", wa)
	}
}

func TestConfigValidation(t *testing.T) {
	clk := sim.New()
	eng := engine.New(engine.Config{CacheBytes: 1 << 20},
		hdd.NewDeterministic(hdd.DefaultProfile()), clk)
	bad := Config{NodeBytes: 1024, MaxFanout: 16, MaxKeyBytes: 32, MaxValueBytes: 128, Layout: Slotted}
	if _, err := New(bad, eng); err == nil {
		t.Fatal("tiny slotted node accepted")
	}
	packedPartial := Config{NodeBytes: 64 << 10, MaxFanout: 8, MaxKeyBytes: 32, MaxValueBytes: 128, Layout: Packed, QueryMode: SlotOnly}
	if _, err := New(packedPartial, eng); err == nil {
		t.Fatal("packed+slot-only accepted")
	}
}

func TestEpsilonAndQueryModeString(t *testing.T) {
	cfg := configs(64<<10, 1<<20)["slot-only"]
	eps := cfg.Epsilon(120)
	if eps <= 0 || eps >= 1 {
		t.Fatalf("epsilon = %v", eps)
	}
	if WholeNode.String() == "" || MetaPlusSlot.String() == "" || SlotOnly.String() == "" {
		t.Fatal("query mode names empty")
	}
}

// TestMetaPlusSlotQueryIOShape: the intermediate ablation configuration
// reads the meta region plus one slot per level — two IOs per level below
// the root, the "segmented buffers without pivots-in-parent" cost.
func TestMetaPlusSlotQueryIOShape(t *testing.T) {
	cfg := configs(32<<10, 1<<20)["meta+slot"]
	tree := newTestTree(t, cfg)
	const n = 20000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	levels := tree.Height()
	if levels < 3 {
		t.Fatalf("tree too shallow (%d)", levels)
	}
	tree.pager().EvictAll(tree.owner)
	tr := &storage.Trace{}
	tree.eng.SetTrace(tr)
	tree.Get(key(n / 2))
	tree.eng.SetTrace(nil)
	if got, want := tr.Len(), 2*(levels-1); got != want {
		t.Fatalf("cold query issued %d IOs, want %d (meta+slot per level): %+v", got, want, tr.Snapshot())
	}
	meta, slot := 0, 0
	for _, r := range tr.Snapshot() {
		switch r.Size {
		case int64(cfg.metaCap()):
			meta++
		case int64(cfg.slotStride()):
			slot++
		default:
			t.Fatalf("unexpected IO size %d", r.Size)
		}
	}
	if meta != levels-1 || slot != levels-1 {
		t.Fatalf("meta=%d slot=%d, want %d each", meta, slot, levels-1)
	}
}

// TestScanIOShape: range queries read whole extents (the paper's range
// bound is O(1+ℓ/B)(1+αB) regardless of node organization).
func TestScanIOShape(t *testing.T) {
	cfg := configs(32<<10, 1<<20)["slot-only"]
	tree := newTestTree(t, cfg)
	const n = 20000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	tree.pager().EvictAll(tree.owner)
	tr := &storage.Trace{}
	tree.eng.SetTrace(tr)
	got := tree.ScanN(key(n/2), 200)
	tree.eng.SetTrace(nil)
	if len(got) != 200 {
		t.Fatalf("scan returned %d", len(got))
	}
	if tr.Len() == 0 {
		t.Fatal("scan issued no IOs")
	}
	for _, r := range tr.Snapshot() {
		if r.Size != int64(cfg.NodeBytes) {
			t.Fatalf("scan IO %+v is not a whole extent", r)
		}
	}
}
