package betree

import (
	"bytes"
	"testing"

	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
)

// TestConcurrentSessions runs k sim processes querying one shared tree
// through the sharded pager: every client must see correct values while
// loads, latch waits, and evictions interleave in virtual time. Run under
// -race this validates the pager's locking discipline on the real Bε-tree
// read path (partial slot reads, PutClean races, full-node upgrades).
func TestConcurrentSessions(t *testing.T) {
	for name, cfg := range configs(16<<10, 0) {
		t.Run(name, func(t *testing.T) {
			clk := sim.New()
			// Tiny budget over 4 shards: constant eviction during queries.
			eng := engine.New(engine.Config{CacheBytes: 128 << 10, Shards: 4},
				hdd.NewDeterministic(hdd.DefaultProfile()), clk)
			tree, err := New(cfg, eng)
			if err != nil {
				t.Fatal(err)
			}
			const n = 4000
			for i := 0; i < n; i++ {
				tree.Put(key(i), value(i))
			}
			tree.Settle()
			tree.Flush()

			const clients = 8
			const queries = 150
			root := stats.NewRNG(23)
			for c := 0; c < clients; c++ {
				rng := root.Split(uint64(c))
				clk.Go(func(pr *sim.Proc) {
					s := tree.Session(eng.Process(pr))
					for q := 0; q < queries; q++ {
						i := rng.Intn(n)
						v, ok := s.Get(key(i))
						if !ok || !bytes.Equal(v, value(i)) {
							t.Errorf("session Get(%d) = %q, %v", i, v, ok)
							return
						}
					}
				})
			}
			start := clk.Now()
			clk.Run()
			if clk.Now() == start {
				t.Fatal("no virtual time elapsed")
			}
			st := tree.Stats()
			if st.Pager.Hits == 0 || st.Pager.Misses == 0 {
				t.Fatalf("expected cache traffic: %+v", st.Pager.ShardStats)
			}
		})
	}
}

// TestConcurrentScanSessions: concurrent range scans through sessions see
// ordered, complete windows.
func TestConcurrentScanSessions(t *testing.T) {
	cfg := configs(16<<10, 0)["slot-only"]
	clk := sim.New()
	eng := engine.New(engine.Config{CacheBytes: 256 << 10, Shards: 4},
		hdd.NewDeterministic(hdd.DefaultProfile()), clk)
	tree, err := New(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Settle()
	tree.Flush()

	const clients = 4
	for c := 0; c < clients; c++ {
		lo := c * 500
		clk.Go(func(pr *sim.Proc) {
			s := tree.Session(eng.Process(pr))
			want := lo
			s.Scan(key(lo), key(lo+200), func(k, v []byte) bool {
				if !bytes.Equal(k, key(want)) {
					t.Errorf("scan at %d: got %q want %q", lo, k, key(want))
					return false
				}
				want++
				return true
			})
			if want != lo+200 {
				t.Errorf("scan from %d returned %d items", lo, want-lo)
			}
		})
	}
	clk.Run()
}
