// Property-based tests (testing/quick) for the Bε-tree: quick generates
// random operation scripts which are replayed against a reference map, with
// structural invariants checked after every script.

package betree

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"iomodels/internal/kv"
)

// script is a quick-generatable operation sequence: each op is (kind, key
// id, value length).
type script []struct {
	Kind uint8
	ID   uint16
	VLen uint8
}

func TestQuickScriptsAgainstModel(t *testing.T) {
	for name, cfg := range configs(16<<10, 256<<10) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			f := func(s script) bool {
				tree := newTestTree(t, cfg)
				model := map[string][]byte{}
				for _, op := range s {
					k := key(int(op.ID % 400))
					switch op.Kind % 4 {
					case 0, 1:
						v := bytes.Repeat([]byte{byte(op.VLen)}, int(op.VLen)%96)
						tree.Put(k, v)
						model[string(k)] = v
					case 2:
						tree.Delete(k)
						delete(model, string(k))
					case 3:
						got, ok := tree.Get(k)
						want, wok := model[string(k)]
						if ok != wok || (ok && !bytes.Equal(got, want)) {
							return false
						}
					}
				}
				if err := tree.Check(); err != nil {
					t.Logf("invariant violation: %v", err)
					return false
				}
				// Full agreement at the end.
				for ks, want := range model {
					got, ok := tree.Get([]byte(ks))
					if !ok || !bytes.Equal(got, want) {
						return false
					}
				}
				count := 0
				tree.Scan(nil, nil, func(k, v []byte) bool {
					count++
					return true
				})
				return count == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickBufferCoalescing verifies the buffer invariants under random
// message streams: (key, seq) order, byte accounting, and the coalescing
// rule (an absorbing message erases everything older for its key).
func TestQuickBufferCoalescing(t *testing.T) {
	f := func(ops []struct {
		Kind uint8
		ID   uint8
	}) bool {
		var b buffer
		seq := uint64(0)
		absorbed := map[string]bool{}
		for _, op := range ops {
			seq++
			k := []byte(fmt.Sprintf("k%03d", op.ID%16))
			var m kv.Message
			switch op.Kind % 3 {
			case 0:
				m = kv.Message{Kind: kv.Put, Seq: seq, Key: k, Value: []byte("v")}
			case 1:
				m = kv.Message{Kind: kv.Tombstone, Seq: seq, Key: k}
			default:
				m = kv.Message{Kind: kv.Upsert, Seq: seq, Key: k, Value: kv.UpsertDelta(1)}
			}
			b.add(m)
			absorbed[string(k)] = m.Kind != kv.Upsert
		}
		// Invariants.
		bytesTotal := 0
		for i, m := range b.msgs {
			bytesTotal += m.Size()
			if i > 0 {
				c := kv.Compare(b.msgs[i-1].Key, m.Key)
				if c > 0 || (c == 0 && b.msgs[i-1].Seq >= m.Seq) {
					return false
				}
				// For one key, only the first message may be absorbing.
				if c == 0 && m.Kind != kv.Upsert {
					return false
				}
			}
		}
		return bytesTotal == b.bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBeTreeTornWriteDetected mirrors the B-tree failure-injection test:
// corrupting an extent's header must be caught by the checksum on reload.
func TestBeTreeTornWriteDetected(t *testing.T) {
	cfg := configs(16<<10, 1<<20)["slot-only"]
	tree := newTestTree(t, cfg)
	for i := 0; i < 3000; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	tree.pager().EvictAll(tree.owner)
	var buf [1]byte
	// Corrupt the child-count field in the meta region of extent 1 (the
	// root stays pinned, so pick a non-root node's extent).
	off := int64(cfg.NodeBytes) + 3
	tree.owner.ReadAt(buf[:], off)
	buf[0] ^= 0xFF
	tree.owner.WriteAt(buf[:], off)
	defer func() {
		if recover() == nil {
			t.Fatal("corrupted node was accepted")
		}
	}()
	for i := 0; i < 3000; i++ {
		tree.Get(key(i))
	}
	tree.Settle()
}

// TestFlushPolicies exercises both flush-victim policies for correctness.
func TestFlushPolicies(t *testing.T) {
	for _, policy := range []FlushPolicy{FlushFullest, FlushRoundRobin} {
		cfg := configs(16<<10, 256<<10)["slot-only"]
		cfg.FlushPolicy = policy
		tree := newTestTree(t, cfg)
		const n = 3000
		for i := 0; i < n; i++ {
			tree.Put(key(i), value(i))
		}
		for i := 0; i < n; i++ {
			v, ok := tree.Get(key(i))
			if !ok || !bytes.Equal(v, value(i)) {
				t.Fatalf("%v: lost key %d", policy, i)
			}
		}
		if err := tree.Check(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if policy.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

// TestSettleMakesItemsExact is the Settle contract.
func TestSettleMakesItemsExact(t *testing.T) {
	cfg := configs(16<<10, 1<<20)["slot-only"]
	tree := newTestTree(t, cfg)
	const n = 2500
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	for i := 0; i < n; i += 3 {
		tree.Delete(key(i))
	}
	tree.Settle()
	want := n - (n+2)/3
	if tree.Items() != want {
		t.Fatalf("items = %d, want %d", tree.Items(), want)
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
}
