// Checkpoint/Open: the Bε-tree's half of engine crash recovery. Buffered
// messages are part of node state, so they live in the pager like
// everything else and the engine checkpoint captures them; the manifest is
// the tree header plus the message sequence counter (replay must not hand
// out seqs that buffered messages already carry).

package betree

import (
	"fmt"

	"iomodels/internal/engine"
	"iomodels/internal/kv"
)

const manifestMagic = 0x42455243 // "BERC"

// Checkpoint implements engine.RecoverableDict: it returns a manifest from
// which Open reconstructs the tree against a recovered engine.
func (t *Tree) Checkpoint() []byte {
	var e kv.Enc
	e.U32(manifestMagic)
	e.U64(uint64(t.root))
	e.U64(t.seq)
	e.U64(uint64(t.items))
	e.U64(uint64(t.nodes))
	e.U64(uint64(t.LogicalBytesInserted))
	return e.Buf
}

// Open reconstructs a tree from a Checkpoint manifest on a recovered
// engine. cfg must match the configuration the tree was created with. The
// root is re-read and re-pinned (it stays pinned for the tree's lifetime).
func Open(cfg Config, eng *engine.Engine, manifest []byte) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Layout == Packed && cfg.QueryMode != WholeNode {
		return nil, fmt.Errorf("betree: packed layout supports only whole-node queries")
	}
	d := &kv.Dec{Buf: manifest}
	if magic := d.U32(); magic != manifestMagic {
		return nil, fmt.Errorf("betree: bad manifest magic %#x", magic)
	}
	t := &Tree{cfg: cfg, eng: eng, owner: eng.Owner()}
	t.root = int64(d.U64())
	t.seq = d.U64()
	t.items = int(d.U64())
	t.nodes = int(d.U64())
	t.LogicalBytesInserted = int64(d.U64())
	if d.Err != nil {
		return nil, fmt.Errorf("betree: corrupt manifest: %w", d.Err)
	}
	t.rootN = t.ensureFull(t.root) // pins the root, as New does
	return t, nil
}

var _ engine.RecoverableDict = (*Tree)(nil)
