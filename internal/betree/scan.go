// Range queries for the Bε-tree.
//
// A range query must merge the leaf entries in [lo, hi) with every buffered
// message for that range on the paths above them. The scan descends
// recursively, partitioning the pending message stream by child and merging
// in each node's buffered messages; at a leaf the accumulated messages are
// applied to the entries and the results emitted in key order. Range scans
// read whole nodes — the paper's range-query bound is O(1+ℓ/B) IOs of
// (1+αB) each regardless of node organization.

package betree

import (
	"sort"

	"iomodels/internal/engine"
	"iomodels/internal/kv"
)

// Scan calls fn for each live entry with lo <= key < hi in key order (hi
// nil means unbounded). fn returning false stops the scan early.
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) {
	t.scanNode(t.owner, t.root, t.rootN, lo, hi, nil, fn)
}

// ScanN collects up to n entries starting at lo.
func (t *Tree) ScanN(lo []byte, n int) []kv.Entry {
	out := make([]kv.Entry, 0, n)
	t.Scan(lo, nil, func(k, v []byte) bool {
		out = append(out, kv.Entry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		return len(out) < n
	})
	return out
}

// scanNode emits the live entries of the subtree at off restricted to
// [lo, hi), under the pending messages inherited from ancestors (sorted by
// key then seq). The node handle n may be nil, in which case it is loaded.
// Returns false if fn stopped the scan.
func (t *Tree) scanNode(c *engine.Client, off int64, n *node, lo, hi []byte, pending []kv.Message, fn func(k, v []byte) bool) bool {
	owned := false
	if n == nil {
		n = t.ensureFullc(c, off)
		owned = true
	}
	if owned {
		defer t.unpinc(c, off)
	}
	if n.leaf {
		return emitLeaf(n.entries, pending, lo, hi, fn)
	}
	first, last := childRange(n, lo, hi)
	for i := first; i <= last; i++ {
		// Messages for child i: ancestors' pending plus this node's buffer,
		// both restricted to [lo, hi) and this child's key range.
		clo, chi := lo, hi
		if i > 0 && (clo == nil || kv.Compare(n.pivots[i-1], clo) > 0) {
			clo = n.pivots[i-1]
		}
		if i < len(n.pivots) && (chi == nil || kv.Compare(n.pivots[i], chi) < 0) {
			chi = n.pivots[i]
		}
		childPending := mergeMessages(
			sliceRange(pending, clo, chi),
			sliceRange(n.bufs[i].msgs, clo, chi),
		)
		if !t.scanNode(c, n.children[i], nil, lo, hi, childPending, fn) {
			return false
		}
	}
	return true
}

// childRange returns the inclusive child index range overlapping [lo, hi).
func childRange(n *node, lo, hi []byte) (int, int) {
	first := 0
	if lo != nil {
		first = n.findChild(lo)
	}
	last := len(n.children) - 1
	if hi != nil {
		last = sort.Search(len(n.pivots), func(i int) bool {
			return kv.Compare(hi, n.pivots[i]) <= 0
		})
	}
	return first, last
}

// sliceRange returns the sub-slice of sorted messages with lo <= key < hi.
func sliceRange(msgs []kv.Message, lo, hi []byte) []kv.Message {
	start := 0
	if lo != nil {
		start = sort.Search(len(msgs), func(i int) bool {
			return kv.Compare(msgs[i].Key, lo) >= 0
		})
	}
	end := len(msgs)
	if hi != nil {
		end = sort.Search(len(msgs), func(i int) bool {
			return kv.Compare(msgs[i].Key, hi) >= 0
		})
	}
	return msgs[start:end]
}

// mergeMessages merges two (key, seq)-sorted message runs. Ancestor
// messages (a) are newer than node-local ones (b) for equal keys, and seq
// order encodes exactly that, so a plain merge by (key, seq) is correct.
func mergeMessages(a, b []kv.Message) []kv.Message {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]kv.Message, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		c := kv.Compare(a[i].Key, b[j].Key)
		if c < 0 || (c == 0 && a[i].Seq < b[j].Seq) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// emitLeaf merges pending messages into the leaf's entries over [lo, hi)
// and emits live results in key order.
func emitLeaf(entries []kv.Entry, pending []kv.Message, lo, hi []byte, fn func(k, v []byte) bool) bool {
	inRange := func(k []byte) bool {
		if lo != nil && kv.Compare(k, lo) < 0 {
			return false
		}
		if hi != nil && kv.Compare(k, hi) >= 0 {
			return false
		}
		return true
	}
	i, m := 0, 0
	for i < len(entries) || m < len(pending) {
		var key []byte
		switch {
		case m >= len(pending):
			key = entries[i].Key
		case i >= len(entries):
			key = pending[m].Key
		case kv.Compare(entries[i].Key, pending[m].Key) <= 0:
			key = entries[i].Key
		default:
			key = pending[m].Key
		}
		var old []byte
		oldOK := false
		if i < len(entries) && kv.Compare(entries[i].Key, key) == 0 {
			old, oldOK = entries[i].Value, true
			i++
		}
		run := m
		for run < len(pending) && kv.Compare(pending[run].Key, key) == 0 {
			run++
		}
		val, ok := kv.ApplyAll(pending[m:run], old, oldOK)
		m = run
		if ok && inRange(key) {
			if !fn(key, val) {
				return false
			}
		}
	}
	return true
}
