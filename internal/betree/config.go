// Configuration and on-disk layout geometry for the Bε-tree.
//
// Two disk layouts are supported, selecting between the paper's naive
// Lemma 8 analysis and the optimized Theorem 9 node organization:
//
//   - Packed: a node is one variable-layout byte stream; every load reads
//     the whole extent (per-level query cost 1+αB).
//   - Slotted: a node is a small meta region plus MaxFanout fixed-stride
//     slots. Slot i of an internal node holds child i's routing info (its
//     pivot set — "the pivots of a node are stored in the node's parent") -
//     followed by the buffered messages destined for child i, bounded by
//     the slot stride (the paper's "no more than B/F elements destined for
//     a particular child"). Slot i of a leaf is a basement block of
//     entries (TokuDB's sub-nodes). Queries read one slot per level: cost
//     1 + αB/F + αF.
//
// QueryMode further separates the Theorem 9 ingredients for the ablation
// experiment: whole-node reads, meta+slot reads (segmented buffers but
// pivots read from the node itself), or slot-only reads (pivots carried
// down from the parent).

package betree

import (
	"fmt"

	"iomodels/internal/kv"
)

// Layout selects the on-disk node organization.
type Layout int

// Layouts.
const (
	Packed Layout = iota
	Slotted
)

// QueryMode selects how much of a node a point query reads on a miss.
type QueryMode int

// Query modes.
const (
	// WholeNode reads the full extent per level (Lemma 8: 1+αB).
	WholeNode QueryMode = iota
	// MetaPlusSlot reads the meta region, then the one relevant slot
	// (segmented buffers without pivots-in-parent: 2 + αB/F + αF).
	MetaPlusSlot
	// SlotOnly reads only the relevant slot, routing with pivots carried
	// from the parent (full Theorem 9: 1 + αB/F + αF).
	SlotOnly
)

func (m QueryMode) String() string {
	switch m {
	case WholeNode:
		return "whole-node"
	case MetaPlusSlot:
		return "meta+slot"
	case SlotOnly:
		return "slot-only"
	default:
		return fmt.Sprintf("querymode(%d)", int(m))
	}
}

// FlushPolicy selects which child buffer a flush drains.
type FlushPolicy int

// Flush policies.
const (
	// FlushFullest drains the child with the most pending bytes — the
	// paper's design ("typically v is chosen to be the child with the most
	// pending messages"), which maximizes bytes moved per IO.
	FlushFullest FlushPolicy = iota
	// FlushRoundRobin drains children cyclically regardless of pending
	// bytes — the ablation baseline, markedly worse under skew.
	FlushRoundRobin
)

func (f FlushPolicy) String() string {
	if f == FlushRoundRobin {
		return "round-robin"
	}
	return "fullest-child"
}

// Config shapes a Bε-tree.
type Config struct {
	// NodeBytes is the extent size of every node: the paper's B.
	NodeBytes int
	// MaxFanout is the target fanout F (TokuDB uses 16; the paper's
	// practical range is [10, 20]; F = √B gives ε = 1/2).
	MaxFanout int
	// MaxKeyBytes and MaxValueBytes bound one key-value pair.
	MaxKeyBytes   int
	MaxValueBytes int
	// Layout and QueryMode select the node organization (see package docs).
	Layout    Layout
	QueryMode QueryMode
	// FlushPolicy selects the flush victim (default: fullest child).
	FlushPolicy FlushPolicy
}

// DefaultFanout is TokuDB's target fanout.
const DefaultFanout = 16

// OptimizedConfig returns cfg with the full Theorem 9 organization enabled.
func (c Config) Optimized() Config {
	c.Layout = Slotted
	c.QueryMode = SlotOnly
	return c
}

const (
	// metaBase covers magic, leaf flag, height, child count and crc.
	metaBase = 16
	// slotHeader covers a count field and crc per slot.
	slotHeader = 8
	ptrBytes   = 8
)

// maxMsgBytes bounds one serialized message.
func (c Config) maxMsgBytes() int {
	return kv.EncodedMessageSize(make([]byte, c.MaxKeyBytes), nil) + c.MaxValueBytes
}

// maxEntryBytes bounds one serialized leaf entry.
func (c Config) maxEntryBytes() int {
	return kv.EncodedEntrySize(make([]byte, c.MaxKeyBytes), nil) + c.MaxValueBytes
}

// maxRouteKeyBytes bounds one serialized routing key.
func (c Config) maxRouteKeyBytes() int { return 4 + c.MaxKeyBytes }

// routeCap bounds a serialized route (a child's pivot set + pointers, or a
// leaf's basement boundaries): up to MaxFanout-1 keys and MaxFanout
// pointers, with headers.
func (c Config) routeCap() int {
	return 8 + c.MaxFanout*c.maxRouteKeyBytes() + (c.MaxFanout+1)*ptrBytes
}

// metaCap is the reserved size of the meta region in the Slotted layout:
// header plus the node's own children pointers and pivots. It is sized for
// twice the target fanout because flush cascades let a node's fanout exceed
// MaxFanout transiently, between a recursive flush and the split that
// follows it.
func (c Config) metaCap() int {
	return metaBase + (2*c.MaxFanout+2)*(ptrBytes+c.maxRouteKeyBytes()) + 4
}

// slotStride is the fixed size of one slot in the Slotted layout: ~B/F.
func (c Config) slotStride() int {
	return (c.NodeBytes - c.metaCap()) / c.MaxFanout
}

// bufCap is the message capacity of one slot (after its header and the
// child's route).
func (c Config) bufCap() int { return c.slotStride() - slotHeader - c.routeCap() }

// basementCap is the entry capacity of one leaf basement block.
func (c Config) basementCap() int { return c.slotStride() - slotHeader }

// leafCapBytes is the total entry capacity of a leaf.
func (c Config) leafCapBytes() int {
	if c.Layout == Slotted {
		// Keep slack so a deterministic re-partition into MaxFanout
		// basements of at most basementCap each always succeeds.
		return c.MaxFanout*c.basementCap() - c.MaxFanout*c.maxEntryBytes()
	}
	return c.NodeBytes - metaBase - c.maxEntryBytes()
}

// packedBufCapBytes is the total buffer capacity of a Packed internal node.
func (c Config) packedBufCapBytes() int {
	return c.NodeBytes - c.metaCap() - c.MaxFanout*(slotHeader+c.routeCap())
}

func (c Config) validate() error {
	if c.NodeBytes <= 0 || c.MaxFanout < 2 || c.MaxKeyBytes <= 0 || c.MaxValueBytes < 0 {
		return fmt.Errorf("betree: invalid config field")
	}
	if c.Layout == Slotted {
		if c.bufCap() < 2*c.maxMsgBytes() {
			return fmt.Errorf("betree: NodeBytes %d too small for fanout %d: slot buffer capacity %d < 2 max messages (%d)",
				c.NodeBytes, c.MaxFanout, c.bufCap(), c.maxMsgBytes())
		}
		if c.basementCap() < 2*c.maxEntryBytes() {
			return fmt.Errorf("betree: basement capacity %d < 2 max entries", c.basementCap())
		}
	} else {
		if c.packedBufCapBytes() < 2*c.MaxFanout*c.maxMsgBytes() {
			return fmt.Errorf("betree: NodeBytes %d too small for fanout %d in packed layout", c.NodeBytes, c.MaxFanout)
		}
	}
	if c.leafCapBytes() < 4*c.maxEntryBytes() {
		return fmt.Errorf("betree: leaf capacity %d too small for 4 max entries", c.leafCapBytes())
	}
	return nil
}

// Epsilon reports the effective ε implied by the configuration, from
// F = B^ε with B measured in entries: ε = ln F / ln(B/entry).
func (c Config) Epsilon(avgEntryBytes int) float64 {
	b := float64(c.NodeBytes) / float64(avgEntryBytes)
	if b <= 1 {
		return 1
	}
	return logf(float64(c.MaxFanout)) / logf(b)
}
