// Package betree implements a disk-backed Bε-tree with a configurable node
// size and fanout, standing in for TokuDB in the paper's node-size
// experiments (§6, §7, Figure 3).
//
// The tree follows Brodal–Fagerberg / Bender et al. [13, 21]: a balanced
// search tree with fat nodes of B bytes; internal nodes carry per-child
// message buffers; updates are encoded as messages (insert, tombstone
// delete, upsert) that settle into buffers and are flushed in bulk toward
// the leaves when buffers overflow, always to the child with the most
// pending bytes. Queries logically apply the messages on their root-to-leaf
// path.
//
// The Theorem 9 optimizations are selected by Config (see config.go):
// per-child buffer segments with a B/F bound and partial (one-slot) query
// IOs; pivots stored in the parent so queries cost one IO of ~B/F+F per
// level; leaves organized as basement blocks. In place of the paper's
// weight-balanced subtree rebuilds, structural balance uses classic
// split/merge with byte thresholds — all leaves stay at the same depth and
// nonroot fanout stays within a constant factor of the target, which is the
// property the rebuild scheme exists to guarantee (DESIGN.md documents the
// substitution); internal-node underflow is handled lazily (root collapse),
// which suffices for the paper's workloads.
package betree

import (
	"fmt"

	"iomodels/internal/engine"
	"iomodels/internal/kv"
)

// Tree is a disk-backed Bε-tree on an engine. Mutations are single-writer
// (they run on the engine's owner client); concurrent sim processes read
// through per-client Sessions, sharing nodes via the engine's pager.
type Tree struct {
	cfg   Config
	eng   *engine.Engine
	owner *engine.Client
	root  int64
	rootN *node // root stays pinned
	items int
	nodes int
	seq   uint64

	// LogicalBytesInserted accumulates the payload bytes of Put/Upsert
	// calls; write amplification divides disk bytes written by this.
	LogicalBytesInserted int64
	// Flushes counts buffer-flush operations.
	Flushes int64
}

// New creates an empty tree on eng.
func New(cfg Config, eng *engine.Engine) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Layout == Packed && cfg.QueryMode != WholeNode {
		return nil, fmt.Errorf("betree: packed layout supports only whole-node queries")
	}
	t := &Tree{cfg: cfg, eng: eng, owner: eng.Owner()}
	t.rootN = newLeafNode()
	t.root = t.allocNode()
	t.pager().Put(t.owner, (*loader)(t), engine.PageID(t.root), t.rootN, t.rootN.chargeSize(cfg))
	// Root remains pinned for the tree's lifetime.
	return t, nil
}

func (t *Tree) pager() *engine.Pager { return t.eng.Pager() }

// loader adapts Tree to engine.Loader. Load performs a whole-extent read
// (the cold-miss path of ensureFull, under the pager's busy latch so
// concurrent clients never decode the same node twice); partial reads stay
// explicit in readSlot. Store writes back whole extents.
type loader Tree

// Load implements engine.Loader.
func (l *loader) Load(c *engine.Client, id engine.PageID) (interface{}, int64) {
	t := (*Tree)(l)
	buf := make([]byte, t.cfg.NodeBytes)
	c.ReadAt(buf, int64(id))
	n, err := decodeFull(t.cfg, buf)
	if err != nil {
		panic(fmt.Sprintf("betree: load of node at %d: %v", id, err))
	}
	return n, n.chargeSize(t.cfg)
}

// Store implements engine.Loader.
func (l *loader) Store(c *engine.Client, id engine.PageID, obj interface{}) {
	t := (*Tree)(l)
	n := obj.(*node)
	if !n.full {
		panic("betree: write-back of partial node")
	}
	c.WriteAt(n.encode(t.cfg), int64(id))
}

// StoreSize implements engine.StoreSizer: nodes encode to at most the
// configured node size (exactly, under the slotted layout). The bound
// keeps the pager's dirty-set accounting conservative, which is the safe
// direction for the durability layer's journal-capacity trigger.
func (l *loader) StoreSize(interface{}) int64 {
	return int64((*Tree)(l).cfg.NodeBytes)
}

func (t *Tree) allocNode() int64 {
	t.nodes++
	return t.eng.Alloc(int64(t.cfg.NodeBytes))
}

func (t *Tree) freeNode(off int64) {
	t.nodes--
	t.pager().Drop(t.owner, engine.PageID(off))
	t.eng.Free(off, int64(t.cfg.NodeBytes))
}

func (t *Tree) unpin(off int64) { t.unpinc(t.owner, off) }

func (t *Tree) unpinc(c *engine.Client, off int64) { t.pager().Unpin(c, engine.PageID(off)) }

func (t *Tree) markDirty(off int64, n *node) {
	t.pager().MarkDirty(t.owner, engine.PageID(off), n.chargeSize(t.cfg))
}

// Items returns the number of live keys settled in leaves. Updates still
// buffered in internal nodes are not counted until they reach a leaf; call
// Settle first for an exact count.
func (t *Tree) Items() int { return t.items }

// Height returns the number of levels (1 = the root is a leaf).
func (t *Tree) Height() int { return t.rootN.height + 1 }

// Nodes returns the number of live nodes.
func (t *Tree) Nodes() int { return t.nodes }

// Engine returns the engine the tree lives on.
func (t *Tree) Engine() *engine.Engine { return t.eng }

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Flush writes all dirty nodes to disk.
func (t *Tree) Flush() { t.pager().Flush(t.owner) }

// ---------------------------------------------------------------------------
// Node residency

// ensureFull returns the node at off with all content resident, pinned on
// the owner client (single-writer paths).
func (t *Tree) ensureFull(off int64) *node { return t.ensureFullc(t.owner, off) }

// ensureFullc returns the node at off with all content resident, pinned on
// behalf of client c. Charges one whole-extent read if anything was
// missing. Cold misses go through the pager's Get so the busy latch makes
// concurrent clients share a single load; the partial→full upgrade is
// idempotent under the simulator's cooperative interleaving.
func (t *Tree) ensureFullc(c *engine.Client, off int64) *node {
	if obj, ok := t.pager().TryGet(c, engine.PageID(off)); ok {
		n := obj.(*node)
		if n.full {
			return n
		}
		buf := make([]byte, t.cfg.NodeBytes)
		c.ReadAt(buf, off)
		dec, err := decodeFull(t.cfg, buf)
		if err != nil {
			panic(fmt.Sprintf("betree: load of node at %d: %v", off, err))
		}
		*n = *dec // upgrade in place so existing references stay valid
		t.pager().Resize(c, engine.PageID(off), n.chargeSize(t.cfg))
		return n
	}
	return t.pager().Get(c, (*loader)(t), engine.PageID(off)).(*node)
}

// readSlot returns slot j of the node at off, reading the minimum the
// configured QueryMode allows, on behalf of client c. The returned node is
// pinned; the caller unpins via t.unpinc(c, off).
func (t *Tree) readSlot(c *engine.Client, off int64, leaf bool, height, j int) (*node, slotPayload) {
	if t.cfg.QueryMode == WholeNode {
		n := t.ensureFullc(c, off)
		var p slotPayload
		if leaf {
			p.entries = n.entries[n.cuts[minInt(j, len(n.cuts)-2)]:n.cuts[minInt(j, len(n.cuts)-2)+1]]
			if t.cfg.Layout == Packed {
				p.entries = n.entries // packed leaves are one big basement
			}
		} else {
			p.msgs = n.bufs[j].msgs
			if t.cfg.Layout == Slotted {
				p.route = n.routes[j]
			} else {
				// Packed layout stores no parent-side routes; synthesize the
				// child's route from nothing — WholeNode traversal reads the
				// child itself, so the route is unused.
			}
		}
		return n, p
	}

	var n *node
	if obj, ok := t.pager().TryGet(c, engine.PageID(off)); ok {
		n = obj.(*node)
	} else {
		n = newPartialNode(leaf, height)
		if t.cfg.QueryMode == MetaPlusSlot {
			// Pay for the meta region read (the node's own pivots).
			mbuf := make([]byte, t.cfg.metaCap())
			c.ReadAt(mbuf, off)
		}
		// Another client may have inserted the node while we read the meta
		// region; the pager returns the canonical resident object.
		n = t.pager().PutClean(c, (*loader)(t), engine.PageID(off), n, n.chargeSize(t.cfg)).(*node)
	}
	if n.full {
		var p slotPayload
		if leaf {
			j = minInt(j, len(n.cuts)-2)
			p.entries = n.entries[n.cuts[j]:n.cuts[j+1]]
		} else {
			p.msgs = n.bufs[j].msgs
			p.route = n.routes[j]
		}
		return n, p
	}
	if p, ok := n.partial[j]; ok {
		return n, p
	}
	stride := t.cfg.slotStride()
	sbuf := make([]byte, stride)
	c.ReadAt(sbuf, off+int64(t.cfg.metaCap())+int64(j)*int64(stride))
	p, err := decodeSlot(leaf, sbuf)
	if err != nil {
		panic(fmt.Sprintf("betree: load of slot %d at %d: %v", j, off, err))
	}
	n.partial[j] = p
	t.pager().Resize(c, engine.PageID(off), n.chargeSize(t.cfg))
	return n, p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Point queries

// Get returns the value for key, logically applying every buffered message
// on the root-to-leaf path (newer messages live nearer the root).
func (t *Tree) Get(key []byte) ([]byte, bool) { return t.getKey(t.owner, key) }

func (t *Tree) getKey(c *engine.Client, key []byte) ([]byte, bool) {
	t.checkKey(key)
	root := t.rootN
	if root.leaf {
		i, ok := root.findEntry(key)
		if !ok {
			return nil, false
		}
		return root.entries[i].Value, true
	}

	// Collect messages top-down; stop early at an absorbing message.
	var levels [][]kv.Message
	absorbed := false

	j := root.findChild(key)
	msgs := bufMessagesFor(root.bufs[j], key)
	levels = append(levels, msgs)
	absorbed = hasAbsorbing(msgs)

	off := root.children[j]
	height := root.height - 1
	var rt route
	if t.cfg.Layout == Slotted {
		rt = root.routes[j]
	}

	var base []byte
	baseOK := false
	for !absorbed {
		if height == 0 {
			jb := 0
			if t.cfg.Layout == Slotted {
				jb = rt.slotIndex(key)
			}
			_, p := t.readSlot(c, off, true, height, jb)
			for _, e := range p.entries {
				if kv.Compare(e.Key, key) == 0 {
					base, baseOK = e.Value, true
					break
				}
			}
			t.unpinc(c, off)
			break
		}
		var j2 int
		var next int64
		if t.cfg.QueryMode == WholeNode {
			n, _ := t.readSlot(c, off, false, height, 0) // ensures full
			j2 = n.findChild(key)
			msgs = bufMessagesFor(n.bufs[j2], key)
			next = n.children[j2]
			if t.cfg.Layout == Slotted {
				rt = n.routes[j2]
			}
			t.unpinc(c, off)
		} else {
			j2 = rt.slotIndex(key)
			nextPtrs := rt.ptrs
			_, p := t.readSlot(c, off, false, height, j2)
			msgs = bufMessagesFor(buffer{msgs: p.msgs}, key)
			rt = p.route
			next = nextPtrs[j2]
			t.unpinc(c, off)
		}
		levels = append(levels, msgs)
		absorbed = hasAbsorbing(msgs)
		off = next
		height--
	}

	// Apply deepest (oldest) first.
	val, ok := base, baseOK
	for i := len(levels) - 1; i >= 0; i-- {
		val, ok = kv.ApplyAll(levels[i], val, ok)
	}
	return val, ok
}

// bufMessagesFor copies the messages for key out of b (they are already in
// seq order).
func bufMessagesFor(b buffer, key []byte) []kv.Message {
	lo, hi := b.find(key)
	if lo == hi {
		return nil
	}
	return append([]kv.Message(nil), b.msgs[lo:hi]...)
}

func hasAbsorbing(msgs []kv.Message) bool {
	for _, m := range msgs {
		if m.Kind != kv.Upsert {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Updates

func (t *Tree) checkKey(key []byte) {
	if len(key) == 0 || len(key) > t.cfg.MaxKeyBytes {
		panic(fmt.Sprintf("betree: key length %d outside (0,%d]", len(key), t.cfg.MaxKeyBytes))
	}
}

// Put inserts or replaces key.
func (t *Tree) Put(key, value []byte) {
	t.checkKey(key)
	if len(value) > t.cfg.MaxValueBytes {
		panic(fmt.Sprintf("betree: value length %d exceeds %d", len(value), t.cfg.MaxValueBytes))
	}
	t.LogicalBytesInserted += int64(len(key) + len(value))
	t.inject(kv.Message{Kind: kv.Put, Key: append([]byte(nil), key...), Value: append([]byte(nil), value...)})
}

// Delete buffers a tombstone for key and reports that the message was
// accepted. (Whether the key existed is unknown until the tombstone reaches
// a leaf; use Get first if you need to know.)
func (t *Tree) Delete(key []byte) bool {
	t.checkKey(key)
	t.inject(kv.Message{Kind: kv.Tombstone, Key: append([]byte(nil), key...)})
	return true
}

// Upsert adds delta to the 64-bit counter stored at key, creating it if
// absent — a blind read-modify-write that costs only an insert (§3).
func (t *Tree) Upsert(key []byte, delta int64) {
	t.checkKey(key)
	t.LogicalBytesInserted += int64(len(key) + 8)
	t.inject(kv.Message{Kind: kv.Upsert, Key: append([]byte(nil), key...), Value: kv.UpsertDelta(delta)})
}

func (t *Tree) inject(m kv.Message) {
	t.seq++
	m.Seq = t.seq
	root := t.rootN
	if root.leaf {
		t.applyToLeaf(root, []kv.Message{m})
		t.markDirty(t.root, root)
		if root.leafBytes > t.cfg.leafCapBytes() {
			t.splitRootLeaf()
		}
		return
	}
	j := root.findChild(m.Key)
	root.bufs[j].add(m)
	t.markDirty(t.root, root)
	for t.overfullNode(root) {
		t.flushNode(t.root, root)
		if len(root.children) > t.cfg.MaxFanout {
			t.splitRoot()
			root = t.rootN
		}
	}
	if len(root.children) > t.cfg.MaxFanout {
		t.splitRoot()
	}
	t.maybeCollapseRoot()
}

// overfullNode reports whether any buffer must be flushed.
func (t *Tree) overfullNode(n *node) bool {
	if n.leaf {
		return false
	}
	if t.cfg.Layout == Slotted {
		stride := t.cfg.slotStride()
		for i := range n.bufs {
			if slotHeader+n.routes[i].bytes()+n.bufs[i].bytes > stride {
				return true
			}
		}
		return false
	}
	limit := t.cfg.NodeBytes - t.cfg.maxMsgBytes() - 64
	return n.metaBytes()+4*len(n.bufs)+n.bufBytesTotal() > limit
}

// fullestBuffer returns the child index with the most pending bytes.
func fullestBuffer(n *node) int {
	best, bestBytes := 0, -1
	for i := range n.bufs {
		if n.bufs[i].bytes > bestBytes {
			best, bestBytes = i, n.bufs[i].bytes
		}
	}
	return best
}

// flushVictim picks the buffer to drain according to the configured policy.
func (t *Tree) flushVictim(n *node) int {
	if t.cfg.FlushPolicy == FlushRoundRobin {
		// Cycle, skipping empty buffers (there is a non-empty one, or the
		// node would not be overfull).
		for tries := 0; tries < len(n.bufs); tries++ {
			i := n.rrCursor % len(n.bufs)
			n.rrCursor++
			if n.bufs[i].bytes > 0 {
				return i
			}
		}
	}
	return fullestBuffer(n)
}

// flushNode moves one buffer of the pinned Full node n one level down (the
// paper's flush operation), recursing if the child overflows and splitting
// or merging children as needed. n may be left with fanout above
// MaxFanout; the caller splits it.
func (t *Tree) flushNode(off int64, n *node) {
	t.Flushes++
	i := t.flushVictim(n)
	moved := n.bufs[i].msgs
	n.bufs[i] = buffer{}
	childOff := n.children[i]
	child := t.ensureFull(childOff)

	if child.leaf {
		t.applyToLeaf(child, moved)
		t.markDirty(childOff, child)
		switch {
		case child.leafBytes > t.cfg.leafCapBytes():
			t.splitLeafChild(off, n, i, childOff, child)
		case child.leafBytes < t.cfg.leafCapBytes()/8 && len(n.children) > 1:
			t.maybeMergeLeafChild(off, n, i, childOff, child)
		default:
			t.syncRoute(n, i, child)
			t.unpin(childOff)
		}
	} else {
		for _, m := range moved {
			child.bufs[child.findChild(m.Key)].add(m)
		}
		t.markDirty(childOff, child)
		for t.overfullNode(child) {
			t.flushNode(childOff, child)
		}
		if len(child.children) > t.cfg.MaxFanout {
			t.splitInternalChild(off, n, i, childOff, child)
		} else {
			t.syncRoute(n, i, child)
			t.unpin(childOff)
		}
	}
	t.markDirty(off, n)
}

// syncRoute refreshes the parent's copy of child i's routing info
// (Theorem 9 stores a node's pivots in its parent).
func (t *Tree) syncRoute(parent *node, i int, child *node) {
	if t.cfg.Layout != Slotted {
		return
	}
	parent.routes[i] = child.ownRoute()
}

// applyToLeaf merges a sorted message run into the leaf's entries.
func (t *Tree) applyToLeaf(leaf *node, msgs []kv.Message) {
	if len(msgs) == 0 {
		return
	}
	out := make([]kv.Entry, 0, len(leaf.entries)+len(msgs))
	bytes := 0
	i := 0
	m := 0
	for m < len(msgs) {
		key := msgs[m].Key
		// Copy entries before key.
		for i < len(leaf.entries) && kv.Compare(leaf.entries[i].Key, key) < 0 {
			out = append(out, leaf.entries[i])
			bytes += leaf.entries[i].Size()
			i++
		}
		var old []byte
		oldOK := false
		if i < len(leaf.entries) && kv.Compare(leaf.entries[i].Key, key) == 0 {
			old, oldOK = leaf.entries[i].Value, true
			i++
		}
		run := m
		for run < len(msgs) && kv.Compare(msgs[run].Key, key) == 0 {
			run++
		}
		val, ok := kv.ApplyAll(msgs[m:run], old, oldOK)
		m = run
		switch {
		case ok && !oldOK:
			t.items++
		case !ok && oldOK:
			t.items--
		}
		if ok {
			out = append(out, kv.Entry{Key: key, Value: val})
			bytes += kv.EncodedEntrySize(key, val)
		}
	}
	for i < len(leaf.entries) {
		out = append(out, leaf.entries[i])
		bytes += leaf.entries[i].Size()
		i++
	}
	leaf.entries = out
	leaf.leafBytes = bytes
	leaf.recut(t.basementCount())
}

func (t *Tree) basementCount() int {
	if t.cfg.Layout == Slotted {
		return t.cfg.MaxFanout
	}
	return 1
}

// ---------------------------------------------------------------------------
// Structural changes

// splitLeafChild splits the pinned overfull leaf child (parent index i)
// into as many half-full leaves as its content needs (a single flush can
// deliver up to a whole node's worth of messages to one leaf, so one
// halving is not always enough) and installs the new siblings. Unpins the
// child and the new leaves.
func (t *Tree) splitLeafChild(parentOff int64, parent *node, i int, childOff int64, child *node) {
	chunks := chunkEntries(child.entries, t.cfg.leafCapBytes()/2)
	// First chunk stays in the child.
	child.entries = chunks[0]
	child.leafBytes = entryBytes(chunks[0])
	child.recut(t.basementCount())
	t.syncRoute(parent, i, child)
	t.markDirty(childOff, child)
	t.unpin(childOff)
	// Remaining chunks become new right siblings, installed left to right.
	at := i
	for _, chunk := range chunks[1:] {
		right := newLeafNode()
		right.entries = append(right.entries, chunk...)
		right.leafBytes = entryBytes(chunk)
		right.recut(t.basementCount())
		pivot := append([]byte(nil), chunk[0].Key...)
		rightOff := t.allocNode()
		t.installChild(parent, at, rightOff, pivot)
		if t.cfg.Layout == Slotted {
			parent.routes[at+1] = right.ownRoute()
		}
		t.pager().Put(t.owner, (*loader)(t), engine.PageID(rightOff), right, right.chargeSize(t.cfg))
		t.pager().Unpin(t.owner, engine.PageID(rightOff))
		at++
	}
}

// chunkEntries partitions entries into runs of at most targetBytes each
// (every run non-empty; single oversized entries get their own run).
func chunkEntries(entries []kv.Entry, targetBytes int) [][]kv.Entry {
	var chunks [][]kv.Entry
	start, acc := 0, 0
	for i, e := range entries {
		if acc > 0 && acc+e.Size() > targetBytes {
			chunks = append(chunks, entries[start:i:i])
			start, acc = i, 0
		}
		acc += e.Size()
	}
	chunks = append(chunks, entries[start:len(entries):len(entries)])
	return chunks
}

func entryBytes(entries []kv.Entry) int {
	s := 0
	for _, e := range entries {
		s += e.Size()
	}
	return s
}

// installChild inserts a new child (with empty buffer) at parent index i+1.
func (t *Tree) installChild(parent *node, i int, childOff int64, pivot []byte) {
	parent.children = append(parent.children, 0)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = childOff
	parent.pivots = append(parent.pivots, nil)
	copy(parent.pivots[i+1:], parent.pivots[i:])
	parent.pivots[i] = pivot
	parent.bufs = append(parent.bufs, buffer{})
	copy(parent.bufs[i+2:], parent.bufs[i+1:])
	parent.bufs[i+1] = buffer{}
	if t.cfg.Layout == Slotted {
		parent.routes = append(parent.routes, route{})
		copy(parent.routes[i+2:], parent.routes[i+1:])
		parent.routes[i+1] = route{}
	}
}

// removeChild removes child i+1 and pivot i from the parent.
func (t *Tree) removeChild(parent *node, i int) {
	parent.children = append(parent.children[:i+1], parent.children[i+2:]...)
	parent.pivots = append(parent.pivots[:i], parent.pivots[i+1:]...)
	parent.bufs = append(parent.bufs[:i+1], parent.bufs[i+2:]...)
	if t.cfg.Layout == Slotted {
		parent.routes = append(parent.routes[:i+1], parent.routes[i+2:]...)
	}
}

// maybeMergeLeafChild merges an underfull leaf child with its right (or
// left) neighbor when the result fits comfortably. Unpins everything it
// pins, including the child.
func (t *Tree) maybeMergeLeafChild(parentOff int64, parent *node, i int, childOff int64, child *node) {
	// Prefer the right neighbor.
	if i+1 < len(parent.children) {
		sibOff := parent.children[i+1]
		sib := t.ensureFull(sibOff)
		if sib.leaf && child.leafBytes+sib.leafBytes <= t.cfg.leafCapBytes()*3/4 {
			child.entries = append(child.entries, sib.entries...)
			child.leafBytes += sib.leafBytes
			child.recut(t.basementCount())
			// Fold the sibling's pending buffer into the child's.
			for _, m := range parent.bufs[i+1].msgs {
				parent.bufs[i].add(m)
			}
			t.removeChild(parent, i)
			t.syncRoute(parent, i, child)
			t.unpin(sibOff)
			t.freeNode(sibOff)
			t.markDirty(childOff, child)
			t.unpin(childOff)
			return
		}
		t.unpin(sibOff)
	} else if i > 0 {
		sibOff := parent.children[i-1]
		sib := t.ensureFull(sibOff)
		if sib.leaf && child.leafBytes+sib.leafBytes <= t.cfg.leafCapBytes()*3/4 {
			sib.entries = append(sib.entries, child.entries...)
			sib.leafBytes += child.leafBytes
			sib.recut(t.basementCount())
			for _, m := range parent.bufs[i].msgs {
				parent.bufs[i-1].add(m)
			}
			t.removeChild(parent, i-1)
			t.syncRoute(parent, i-1, sib)
			t.markDirty(sibOff, sib)
			t.unpin(sibOff)
			t.unpin(childOff)
			t.freeNode(childOff)
			return
		}
		t.unpin(sibOff)
	}
	t.syncRoute(parent, i, child)
	t.unpin(childOff)
}

// splitInternalChild splits the pinned internal child (parent index i) into
// as many pieces as needed to bring every piece within MaxFanout (a flush
// that multiway-split several leaves below can leave the child more than
// one over the bound), partitioning its buffers. Unpins the child and the
// new siblings.
func (t *Tree) splitInternalChild(parentOff int64, parent *node, i int, childOff int64, child *node) {
	n := len(child.children)
	groups := (n + t.cfg.MaxFanout - 1) / t.cfg.MaxFanout
	if groups < 2 {
		groups = 2
	}
	cuts := []int{0}
	base, ext := n/groups, n%groups
	pos := 0
	for g := 0; g < groups; g++ {
		sz := base
		if g < ext {
			sz++
		}
		pos += sz
		cuts = append(cuts, pos)
	}

	origChildren := append([]int64(nil), child.children...)
	origPivots := append([][]byte(nil), child.pivots...)
	origBufs := append([]buffer(nil), child.bufs...)
	var origRoutes []route
	if t.cfg.Layout == Slotted {
		origRoutes = append(origRoutes, child.routes...)
	}

	carve := func(dst *node, lo, hi int) {
		dst.children = append([]int64(nil), origChildren[lo:hi]...)
		dst.pivots = append([][]byte(nil), origPivots[lo:hi-1]...)
		dst.bufs = append([]buffer(nil), origBufs[lo:hi]...)
		if t.cfg.Layout == Slotted {
			dst.routes = append([]route(nil), origRoutes[lo:hi]...)
		}
	}
	// The first group stays in the child.
	carve(child, cuts[0], cuts[1])
	t.syncRoute(parent, i, child)
	t.markDirty(childOff, child)
	t.unpin(childOff)

	at := i
	for g := 1; g < groups; g++ {
		right := newInternalNode(child.height)
		carve(right, cuts[g], cuts[g+1])
		pivot := append([]byte(nil), origPivots[cuts[g]-1]...)
		rightOff := t.allocNode()
		t.installChild(parent, at, rightOff, pivot)
		if t.cfg.Layout == Slotted {
			parent.routes[at+1] = right.ownRoute()
		}
		t.pager().Put(t.owner, (*loader)(t), engine.PageID(rightOff), right, right.chargeSize(t.cfg))
		t.pager().Unpin(t.owner, engine.PageID(rightOff))
		at++
	}
}

// splitRootLeaf splits a leaf root into two leaves under a new internal
// root.
func (t *Tree) splitRootLeaf() {
	old := t.rootN
	oldOff := t.root
	newRoot := newInternalNode(1)
	newRoot.children = []int64{oldOff}
	newRoot.bufs = []buffer{{}}
	if t.cfg.Layout == Slotted {
		newRoot.routes = []route{{}}
	}
	newOff := t.allocNode()
	t.pager().Put(t.owner, (*loader)(t), engine.PageID(newOff), newRoot, newRoot.chargeSize(t.cfg))
	t.pager().Pin(engine.PageID(oldOff)) // splitLeafChild unpins it
	t.splitLeafChild(newOff, newRoot, 0, oldOff, old)
	t.markDirty(newOff, newRoot)
	t.unpin(oldOff) // drop the long-lived root pin
	t.root = newOff
	t.rootN = newRoot
}

// splitRoot splits an over-fanout internal root under a new root.
func (t *Tree) splitRoot() {
	old := t.rootN
	oldOff := t.root
	newRoot := newInternalNode(old.height + 1)
	newRoot.children = []int64{oldOff}
	newRoot.bufs = []buffer{{}}
	if t.cfg.Layout == Slotted {
		newRoot.routes = []route{{}}
	}
	newOff := t.allocNode()
	t.pager().Put(t.owner, (*loader)(t), engine.PageID(newOff), newRoot, newRoot.chargeSize(t.cfg))
	t.pager().Pin(engine.PageID(oldOff)) // splitInternalChild unpins it
	t.splitInternalChild(newOff, newRoot, 0, oldOff, old)
	t.markDirty(newOff, newRoot)
	t.unpin(oldOff) // drop the long-lived root pin
	t.root = newOff
	t.rootN = newRoot
}

// Settle drains every buffered message down to the leaves, so that Items
// is exact and all state lives in leaf entries. Experiments use it to close
// a load phase; it performs the same flushes the workload would eventually
// pay for.
func (t *Tree) Settle() {
	for {
		root := t.rootN
		if root.leaf {
			return
		}
		t.settleSubtree(t.root, root)
		if len(root.children) > t.cfg.MaxFanout {
			t.splitRoot()
			continue
		}
		t.maybeCollapseRoot()
		return
	}
}

// settleSubtree drains the pinned Full node n and recursively its children.
// n may be left with fanout above MaxFanout; the caller splits it.
func (t *Tree) settleSubtree(off int64, n *node) {
	if n.leaf {
		return
	}
	for n.bufBytesTotal() > 0 {
		t.flushNode(off, n)
	}
	for i := 0; i < len(n.children); i++ {
		childOff := n.children[i]
		child := t.ensureFull(childOff)
		if child.leaf {
			t.unpin(childOff)
			continue
		}
		t.settleSubtree(childOff, child)
		if len(child.children) > t.cfg.MaxFanout {
			t.splitInternalChild(off, n, i, childOff, child) // unpins child
		} else {
			t.syncRoute(n, i, child)
			t.markDirty(off, n)
			t.unpin(childOff)
		}
	}
}

// maybeCollapseRoot replaces a single-child internal root whose buffer is
// empty with its child.
func (t *Tree) maybeCollapseRoot() {
	root := t.rootN
	for !root.leaf && len(root.children) == 1 && root.bufs[0].bytes == 0 {
		childOff := root.children[0]
		child := t.ensureFull(childOff) // pinned: becomes the root pin
		oldOff := t.root
		t.unpin(oldOff)
		t.freeNode(oldOff)
		t.root = childOff
		t.rootN = child
		root = child
	}
}
