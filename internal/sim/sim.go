// Package sim is a small deterministic discrete-event simulation engine with
// a virtual nanosecond clock. It underlies every storage-device simulator in
// this repository: devices compute service times against the virtual clock,
// so experiments measure exact, noise-free "wall-clock" time regardless of
// host load.
//
// Two styles of use are supported:
//
//   - Event callbacks: schedule a func to run at a virtual time (At/After).
//   - Processes: goroutine-backed simulated threads that can block on the
//     virtual clock (Sleep/SleepUntil). Only one goroutine — the engine
//     driver or exactly one process — runs at a time, so simulated code
//     needs no locking and the simulation is deterministic.
//
// The multi-threaded SSD benchmark (Figure 1) uses processes; the
// single-threaded tree benchmarks use a bare Engine as an advancing clock.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts a virtual duration to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a virtual duration,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64 // FIFO tiebreak for equal times: determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use at
// virtual time 0. An Engine must be driven from a single goroutine (its
// processes are coordinated so that only one runs at a time).
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	running int // live processes, for deadlock detection in Run
}

// New returns a fresh engine at virtual time zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Advance moves the virtual clock forward by d without running events; it is
// the single-threaded "charge this much service time" primitive. It panics
// if events are pending (mixing styles that way would reorder time) or if d
// is negative.
func (e *Engine) Advance(d Time) {
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	if len(e.events) > 0 {
		panic("sim: Advance while events are pending; use Run")
	}
	e.now += d
}

// AdvanceTo moves the clock to t (no-op if t is in the past). Like Advance
// it must not race pending events.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.Advance(t - e.now)
	}
}

// At schedules fn to run at virtual time t. Scheduling in the past panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the next pending event, advancing the clock to its time. It
// reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run drives the simulation until no events remain. It panics if processes
// are still blocked when the event queue drains (a simulated deadlock).
func (e *Engine) Run() {
	for e.Step() {
	}
	if e.running > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events", e.running))
	}
}

// RunUntil drives the simulation until virtual time t; remaining events stay
// queued. The clock ends at exactly t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Proc is a simulated thread: a goroutine that alternates control with the
// engine. Within a Proc's body, time passes only via Sleep/SleepUntil; all
// computation between sleeps happens at a single virtual instant.
type Proc struct {
	eng  *Engine
	wake chan struct{}
	idle chan struct{}
}

// Go starts fn as a simulated process at the current virtual time. The
// process runs when the engine is driven (Run/RunUntil/Step).
func (e *Engine) Go(fn func(p *Proc)) {
	p := &Proc{eng: e, wake: make(chan struct{}), idle: make(chan struct{})}
	e.running++
	go func() {
		<-p.wake // wait for the engine to hand us control
		fn(p)
		e.running--
		p.idle <- struct{}{} // return control for the last time
	}()
	e.After(0, func() { p.handoff() })
}

// handoff transfers control to the process goroutine and blocks the engine
// until the process yields (by sleeping or finishing).
func (p *Proc) handoff() {
	p.wake <- struct{}{}
	<-p.idle
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Sleep suspends the process for virtual duration d (d <= 0 yields without
// advancing time, allowing same-time events to interleave FIFO).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.After(d, func() { p.handoff() })
	p.idle <- struct{}{} // yield to engine
	<-p.wake             // resumed at target time
}

// SleepUntil suspends the process until virtual time t (no-op if t <= now —
// it still yields, keeping scheduling fair and deterministic).
func (p *Proc) SleepUntil(t Time) {
	d := t - p.eng.Now()
	p.Sleep(d)
}

// WaitGroup counts outstanding simulated tasks. Unlike sync.WaitGroup it is
// engine-aware: Wait suspends the calling process until the count drops to
// zero. It must only be used from engine-coordinated code.
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add increments the counter by n.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the counter, waking waiters at zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if w.count == 0 {
		ws := w.waiters
		w.waiters = nil
		for _, p := range ws {
			// Wake each waiter via a zero-delay event so control flows
			// through the engine deterministically.
			p.eng.After(0, p.handoff)
		}
	}
}

// Wait suspends p until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.idle <- struct{}{}
	<-p.wake
}
