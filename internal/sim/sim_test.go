package sim

import (
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if (2 * Second).Seconds() != 2 {
		t.Fatal("Seconds roundtrip failed")
	}
	if (3 * Millisecond).Milliseconds() != 3 {
		t.Fatal("Milliseconds roundtrip failed")
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		2 * Second:      "2.000s",
		3 * Millisecond: "3.000ms",
		4 * Microsecond: "4.000µs",
		5:               "5ns",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 11) }) // same time: FIFO
	e.Run()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(50, func() {})
}

func TestAdvance(t *testing.T) {
	e := New()
	e.Advance(10)
	e.AdvanceTo(25)
	e.AdvanceTo(5) // no-op backwards
	if e.Now() != 25 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestAdvanceWithPendingEventsPanics(t *testing.T) {
	e := New()
	e.After(10, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Advance(5)
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 1 || e.Now() != 20 {
		t.Fatalf("fired=%d now=%v", fired, e.Now())
	}
	e.Run()
	if fired != 2 || e.Now() != 30 {
		t.Fatalf("fired=%d now=%v", fired, e.Now())
	}
}

func TestProcessSleep(t *testing.T) {
	e := New()
	var times []Time
	e.Go(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100)
			times = append(times, p.Now())
		}
	})
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	e := New()
	var order []string
	e.Go(func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20) // wakes at 30
		order = append(order, "a30")
	})
	e.Go(func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
	})
	e.Run()
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessDeterminism(t *testing.T) {
	run := func() []Time {
		e := New()
		var log []Time
		for i := 0; i < 8; i++ {
			d := Time((i%3 + 1) * 7)
			e.Go(func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(d)
					log = append(log, p.Now())
				}
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSleepUntilPast(t *testing.T) {
	e := New()
	done := false
	e.Go(func(p *Proc) {
		p.Sleep(50)
		p.SleepUntil(10) // in the past: yields without moving time
		if p.Now() != 50 {
			t.Errorf("now = %v, want 50", p.Now())
		}
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("process did not finish")
	}
}

func TestWaitGroup(t *testing.T) {
	e := New()
	var wg WaitGroup
	var finished []int
	wg.Add(2)
	e.Go(func(p *Proc) {
		p.Sleep(100)
		finished = append(finished, 1)
		wg.Done()
	})
	e.Go(func(p *Proc) {
		p.Sleep(200)
		finished = append(finished, 2)
		wg.Done()
	})
	e.Go(func(p *Proc) {
		wg.Wait(p)
		finished = append(finished, 99)
		if p.Now() != 200 {
			t.Errorf("waiter woke at %v, want 200", p.Now())
		}
	})
	e.Run()
	if len(finished) != 3 || finished[2] != 99 {
		t.Fatalf("finished = %v", finished)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	e := New()
	var wg WaitGroup
	ran := false
	e.Go(func(p *Proc) {
		wg.Wait(p) // should not block
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("Wait on zero counter blocked")
	}
}
