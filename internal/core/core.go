// Package core implements the paper's analytic contribution: the DAM,
// affine, and PDAM cost models, the B-tree and Bε-tree cost analyses carried
// out in them, and the optimal-parameter results.
//
// Map from paper to code:
//
//	§2.1  DAM model                      DAM, DAMFromAffine (Lemma 1)
//	§2.2  PDAM model (Definition 1)      PDAM, PDAMReadSeconds, DAMReadSeconds
//	§2.3  affine model (Definition 2)    Affine
//	§5    B-tree in the affine model     BTreeParams, BTreePointCost, ...
//	      Corollary 6                    Affine.HalfBandwidthBytes
//	      Corollary 7                    OptimalBTreeNodeBytes, Corollary7Approx
//	§6    Bε-tree in the affine model    BeTreeParams, BeTreeInsertCost, ...
//	      Lemma 8 (naive) / Theorem 9    BeTreeParams.Optimized toggles the
//	                                     per-level query term 1+αB vs
//	                                     1+αB/F+αF
//	      Corollary 11/12                OptimalBeTreeFanout, OptimalBeTreeParams
//	      Table 3                        Table3
//	§3    write amplification            BTreeWriteAmp (Lemma 3),
//	                                     BeTreeWriteAmp (Theorem 4.4)
//	§8    PDAM tree design (Lemma 13)    Lemma13QuerySteps, Lemma13Throughput
//
// Costs are in seconds; sizes in bytes. The paper's normalized form (an IO
// of k words costs 1+αk) corresponds to dividing by Affine.Setup; helpers
// expose α for any block granularity so numbers can be compared with the
// paper's per-4KiB α values directly.
package core

import (
	"math"
)

// BlockUnit is the granularity used by the paper's Table 2 when quoting t
// and α (seconds per 4 KiB).
const BlockUnit = 4096.0

// Affine is the affine model of Definition 2: an IO of x bytes costs
// Setup + PerByte*x seconds. For a hard disk Setup is the expected
// seek+rotation cost and PerByte the inverse bandwidth.
type Affine struct {
	Setup   float64 // s: seconds per IO
	PerByte float64 // t: seconds per byte
}

// AffineFromAlpha builds a normalized affine model (Setup = 1 second) with
// the given α at the given block granularity: an IO of k blocks costs 1+αk.
func AffineFromAlpha(alpha, blockBytes float64) Affine {
	return Affine{Setup: 1, PerByte: alpha / blockBytes}
}

// Cost returns the cost in seconds of a single IO of the given size.
func (a Affine) Cost(bytes float64) float64 { return a.Setup + a.PerByte*bytes }

// NormalizedCost returns Cost/Setup, i.e. 1+αx in the paper's units.
func (a Affine) NormalizedCost(bytes float64) float64 { return a.Cost(bytes) / a.Setup }

// Alpha returns the normalized bandwidth cost α for the given block
// granularity: the cost of transferring one block in units of the setup
// cost. Table 2 quotes Alpha(4096).
func (a Affine) Alpha(blockBytes float64) float64 { return a.PerByte * blockBytes / a.Setup }

// HalfBandwidthBytes returns the IO size where setup and transfer costs are
// equal (the half-bandwidth point): s/t bytes, i.e. 1/α blocks.
func (a Affine) HalfBandwidthBytes() float64 { return a.Setup / a.PerByte }

// DAM is the disk-access machine model: all IOs move BlockBytes and cost
// UnitCost seconds.
type DAM struct {
	BlockBytes float64
	UnitCost   float64
}

// Cost returns the cost of n block IOs.
func (d DAM) Cost(nIOs float64) float64 { return d.UnitCost * nIOs }

// DAMFromAffine applies Lemma 1: setting the DAM block size to the affine
// model's half-bandwidth point makes every DAM IO cost exactly 2s, and any
// affine algorithm is approximated within a factor of 2.
func DAMFromAffine(a Affine) DAM {
	return DAM{BlockBytes: a.HalfBandwidthBytes(), UnitCost: 2 * a.Setup}
}

// ---------------------------------------------------------------------------
// B-trees in the affine model (§5)

// BTreeParams describes a B-tree instance for analysis.
type BTreeParams struct {
	NodeBytes  float64 // B
	EntryBytes float64 // size of one key-value pair (or pivot+pointer)
	Items      float64 // N
	CacheBytes float64 // M
}

// Fanout returns the node fanout B/entry.
func (p BTreeParams) Fanout() float64 { return p.NodeBytes / p.EntryBytes }

// Height returns the number of uncached levels a root-to-leaf walk visits:
// log_fanout(N/M) with N and M in items, floored at zero (Lemma 5 caches the
// top Θ(log_B M) levels). When the data set exceeds the cache, a random
// point operation misses at least the leaf level regardless of fanout, so
// the height is floored at one in that regime.
func (p BTreeParams) Height() float64 {
	f := p.Fanout()
	if f <= 1 {
		return math.Inf(1)
	}
	mItems := p.CacheBytes / p.EntryBytes
	if mItems < 1 {
		mItems = 1
	}
	h := math.Log(p.Items/mItems) / math.Log(f)
	if p.Items*p.EntryBytes <= p.CacheBytes {
		if h < 0 {
			return 0
		}
		return h
	}
	if h < 1 {
		return 1
	}
	return h
}

// BTreePointCost returns the affine cost of a point query, insert, or delete
// (Lemma 5): (1+αB)·log_{B+1}(N/M), in seconds.
func BTreePointCost(a Affine, p BTreeParams) float64 {
	return a.Cost(p.NodeBytes) * p.Height()
}

// BTreeRangeCost returns the affine cost of a range query returning ell
// items, excluding the initial point query (Lemma 5): ceil(ell/B) leaf reads
// of a full node each.
func BTreeRangeCost(a Affine, p BTreeParams, ell float64) float64 {
	leaves := math.Ceil(ell * p.EntryBytes / p.NodeBytes)
	if leaves < 1 {
		leaves = 1
	}
	return leaves * a.Cost(p.NodeBytes)
}

// BTreeWriteAmp returns the worst-case write amplification of Lemma 3: a
// whole node of B bytes is rewritten per O(1) modified entries, so the
// amplification is Θ(B) — here B/entry, the node size in entries.
func BTreeWriteAmp(p BTreeParams) float64 { return p.Fanout() }

// OptimalBTreeNodeBytes numerically minimizes the point-operation cost
// (1+αx)/ln(x/e+1) over node sizes x (Corollary 7). The returned optimum is
// below the half-bandwidth point by a Θ(ln(1/α)) factor.
func OptimalBTreeNodeBytes(a Affine, entryBytes float64) float64 {
	cost := func(nodeBytes float64) float64 {
		fanout := nodeBytes/entryBytes + 1
		if fanout <= 1.0000001 {
			return math.Inf(1)
		}
		return a.Cost(nodeBytes) / math.Log(fanout)
	}
	return minimizeLogSpace(cost, 2*entryBytes, 1e6*a.HalfBandwidthBytes())
}

// Corollary7Approx returns the closed-form optimum Θ(1/(α·ln(1/α))) of
// Corollary 7 in bytes, with entries as the word unit.
func Corollary7Approx(a Affine, entryBytes float64) float64 {
	alpha := a.Alpha(entryBytes) // per-entry α, matching the proof's units
	if alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	blocks := 1 / (alpha * math.Log(1/alpha))
	return blocks * entryBytes
}

// ---------------------------------------------------------------------------
// Bε-trees in the affine model (§6)

// BeTreeParams describes a Bε-tree instance for analysis.
type BeTreeParams struct {
	NodeBytes  float64 // B
	EntryBytes float64 // size of one message / key-value pair
	PivotBytes float64 // size of one pivot key + child pointer
	Fanout     float64 // F (the paper's Bε + 1)
	Items      float64 // N
	CacheBytes float64 // M
	// Optimized selects the Theorem 9 node organization: per-child buffer
	// segments bounded by B/F, pivots stored in the parent, weight-balanced
	// fanout. False gives the naive Lemma 8 analysis (queries read whole
	// nodes).
	Optimized bool
}

// Height returns log_F(N/M), floored at zero, and at one when the data set
// exceeds the cache (a point operation misses at least the leaf level).
func (p BeTreeParams) Height() float64 {
	if p.Fanout <= 1 {
		return math.Inf(1)
	}
	mItems := p.CacheBytes / p.EntryBytes
	if mItems < 1 {
		mItems = 1
	}
	h := math.Log(p.Items/mItems) / math.Log(p.Fanout)
	if p.Items*p.EntryBytes <= p.CacheBytes {
		if h < 0 {
			return 0
		}
		return h
	}
	if h < 1 {
		return 1
	}
	return h
}

// BeTreeInsertCost returns the amortized affine cost of an insert or delete
// (Lemma 8 / Theorem 9, identical): flushing one level moves Θ(B) bytes of
// messages with F+1 IOs of B bytes, i.e. (F/B)(1+αB) per element per level
// in normalized units — here e·F·(s+tB)/B per level, times the height.
func BeTreeInsertCost(a Affine, p BeTreeParams) float64 {
	perLevel := p.EntryBytes * p.Fanout * a.Cost(p.NodeBytes) / p.NodeBytes
	return perLevel * p.Height()
}

// BeTreePointCost returns the affine cost of a point query. Naive (Lemma 8):
// (1+αB) per level. Optimized (Theorem 9): 1+αB/F+αF per level — one IO
// reading the child's pivot set (F pivots) plus the one buffer segment
// (≤ B/F bytes) relevant to the query, times a (1+1/log F) height penalty
// from weight-balancing.
func BeTreePointCost(a Affine, p BeTreeParams) float64 {
	if !p.Optimized {
		return a.Cost(p.NodeBytes) * p.Height()
	}
	perLevel := a.Setup + a.PerByte*(p.NodeBytes/p.Fanout) + a.PerByte*(p.Fanout*p.PivotBytes)
	slack := 1 + 1/math.Log(math.Max(p.Fanout, math.E))
	return perLevel * p.Height() * slack
}

// BeTreeRangeCost returns the affine cost of a range query returning ell
// items, excluding the initial point query: O(1+ℓ/B) IOs of (1+αB) each.
func BeTreeRangeCost(a Affine, p BeTreeParams, ell float64) float64 {
	leaves := math.Ceil(ell * p.EntryBytes / p.NodeBytes)
	if leaves < 1 {
		leaves = 1
	}
	return leaves * a.Cost(p.NodeBytes)
}

// BeTreeWriteAmp returns the write amplification of Theorem 4(4):
// O(F·log_F(N/M)) — each byte is rewritten O(F) times per level it descends.
func BeTreeWriteAmp(p BeTreeParams) float64 { return p.Fanout * p.Height() }

// OptimalBeTreeFanout numerically minimizes the optimized total query cost
// (per-level cost (1 + αB/F + αF·pivot) times the height log_F(N/M)) over F
// for fixed B. Larger F shortens the tree and shrinks the αB/F term, so the
// optimum sits above the per-level balance point sqrt(B/pivot), capped by
// the pivot-transfer term αF.
func OptimalBeTreeFanout(a Affine, p BeTreeParams) float64 {
	cost := func(f float64) float64 {
		q := p
		q.Fanout = f
		q.Optimized = true
		return BeTreePointCost(a, q)
	}
	return minimizeLogSpace(cost, 2, p.NodeBytes/p.PivotBytes)
}

// OptimalBeTreeParams returns the Corollary 12 choice: fanout
// F = Θ(1/(α·ln(1/α))) (the B-tree's optimal fanout, making queries optimal
// to lower-order terms) and node size B = F² (in pivot units), at which
// point the per-level transfer terms αB/F and αF are both o(1) while
// inserts run Θ(log(1/α)) faster than a B-tree's.
func OptimalBeTreeParams(a Affine, entryBytes, pivotBytes float64) (fanout, nodeBytes float64) {
	optB := OptimalBTreeNodeBytes(a, entryBytes)
	fanout = optB / entryBytes // B-tree's optimal fanout
	nodeBytes = fanout * fanout * pivotBytes
	return fanout, nodeBytes
}

// minimizeLogSpace finds the argmin of f over [lo, hi] by golden-section
// search on log(x); f must be unimodal on the interval (all our cost curves
// are).
func minimizeLogSpace(f func(float64) float64, lo, hi float64) float64 {
	a, b := math.Log(lo), math.Log(hi)
	const phi = 0.6180339887498949
	g := func(x float64) float64 { return f(math.Exp(x)) }
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := g(c), g(d)
	for i := 0; i < 200 && b-a > 1e-10; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = g(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = g(d)
		}
	}
	return math.Exp((a + b) / 2)
}

// ---------------------------------------------------------------------------
// Table 3

// Table3Row is one row of the paper's Table 3: the node-size sensitivity of
// update and query costs, in the paper's normalized units (α per block, B in
// blocks, log base e; constants dropped as in the Θ-bounds).
type Table3Row struct {
	Design string
	Insert float64
	Query  float64
}

// Table3 evaluates the three designs of Table 3 at node size B (in blocks),
// normalized bandwidth cost alpha (per block), and size ratio logNM =
// ln(N/M).
//
//	B-tree:            insert = query = (1+αB)/ln B · ln(N/M)
//	Bε-tree (F=√B):    insert = (1+αB)/(√B·ln B)·ln(N/M),
//	                   query  = (1+α√B)/ln B · ln(N/M)
//	Bε-tree (general F): insert = F(1+αB)/(B·ln F)·ln(N/M),
//	                   query  = (F+αF²+αB)/(F·ln F)·ln(N/M)
func Table3(alpha, B, logNM float64, fanout float64) []Table3Row {
	lnB := math.Log(B)
	sqB := math.Sqrt(B)
	rows := []Table3Row{
		{
			Design: "B-tree",
			Insert: (1 + alpha*B) / lnB * logNM,
			Query:  (1 + alpha*B) / lnB * logNM,
		},
		{
			Design: "Bε-tree (F=√B)",
			Insert: (1 + alpha*B) / (sqB * lnB) * logNM,
			Query:  (1 + alpha*sqB) / lnB * logNM,
		},
	}
	if fanout > 1 {
		lnF := math.Log(fanout)
		rows = append(rows, Table3Row{
			Design: "Bε-tree (general F)",
			Insert: fanout * (1 + alpha*B) / (B * lnF) * logNM,
			Query:  (fanout + alpha*fanout*fanout + alpha*B) / (fanout * lnF) * logNM,
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// PDAM (§2.2, §8)

// PDAM is the parallel disk-access machine of Definition 1.
type PDAM struct {
	P           int     // IOs served per time step
	BlockBytes  float64 // B
	StepSeconds float64 // duration of one time step
}

// PDAMReadSeconds predicts the Figure 1 experiment: p threads each
// performing perThreadIOs dependent block reads. With p ≤ P every thread's
// IO is served each step (latency-bound, time constant in p); beyond P the
// device is saturated and time grows linearly: perThreadIOs·max(1, p/P)
// steps.
func (m PDAM) PDAMReadSeconds(p int, perThreadIOs float64) float64 {
	factor := 1.0
	if f := float64(p) / float64(m.P); f > 1 {
		factor = f
	}
	return perThreadIOs * factor * m.StepSeconds
}

// DAMReadSeconds is the DAM's prediction of the same experiment: the device
// serves one block per step regardless of offered parallelism, so time grows
// linearly from p = 1. For large p it overestimates by a factor of P (§4.1).
func (m PDAM) DAMReadSeconds(p int, perThreadIOs float64) float64 {
	return perThreadIOs * float64(p) * m.StepSeconds
}

// Lemma13QuerySteps returns the PDAM time steps per query for a search tree
// with nodes of PB entries laid out in a van Emde Boas order, traversed by
// one of k ≤ P concurrent clients, each granted P/k block-IOs per step:
// Θ(log_{PB/k}(N)) (Lemma 13). nodeEntries is the entry capacity of one
// PB-sized node, blockEntries of one B-sized block.
func Lemma13QuerySteps(items, nodeEntries, blockEntries float64, k, P int) float64 {
	perStepBlocks := float64(P) / float64(k)
	base := blockEntries * perStepBlocks // entries fetchable per step: (P/k)·B
	if base < 2 {
		base = 2
	}
	return math.Log(items) / math.Log(base)
}

// Lemma13Throughput returns queries per time step for k clients:
// k / Lemma13QuerySteps.
func Lemma13Throughput(items, nodeEntries, blockEntries float64, k, P int) float64 {
	return float64(k) / Lemma13QuerySteps(items, nodeEntries, blockEntries, k, P)
}

// ---------------------------------------------------------------------------
// Multi-queue refinement of the PDAM

// MQ refines the PDAM the way the PDAM refines the DAM: instead of one
// scalar P, the device exposes Queues submission/completion queue pairs.
// Each queue can serve up to PerQueueP IOs per time step, capped by its
// depth (a queue cannot complete more IOs in a step than it can hold
// outstanding), and diluted by cross-queue interference: with a queues
// active in the same step, each queue's service rate drops by the factor
// 1 + Beta·(a−1) (shared dies, channels, and FTL contention — the
// multi-queue SSD modeling direction of arXiv 2507.06349).
//
// With Queues = 1 and QueueDepth ≥ PerQueueP the MQ degenerates exactly to
// the PDAM with P = PerQueueP: one queue is never interfered with.
type MQ struct {
	Queues      int     // submission/completion queue pairs
	PerQueueP   int     // IOs one uncontended queue serves per step
	QueueDepth  int     // per-queue outstanding-IO cap (0 = PerQueueP)
	Beta        float64 // cross-queue interference coefficient
	BlockBytes  float64 // B
	StepSeconds float64 // duration of one time step
}

// QueueSlots returns the IOs one queue serves per step when `active` queues
// share the device: floor(min(PerQueueP, QueueDepth) / (1 + Beta·(active−1))),
// never below 1 (a non-empty queue always makes progress).
func (m MQ) QueueSlots(active int) int {
	eff := m.PerQueueP
	if m.QueueDepth > 0 && m.QueueDepth < eff {
		eff = m.QueueDepth
	}
	if active > 1 && m.Beta > 0 {
		eff = int(float64(eff) / (1 + m.Beta*float64(active-1)))
	}
	if eff < 1 {
		eff = 1
	}
	return eff
}

// EffectiveParallelism is the device's realizable IOs per step with every
// queue active: Queues · QueueSlots(Queues). This — not the raw slot count
// Queues·PerQueueP that a PDAM reading of the geometry would use — is the
// knee of the thread-scaling curve.
func (m MQ) EffectiveParallelism() int { return m.Queues * m.QueueSlots(m.Queues) }

// RawP is the single-scalar PDAM reading of the queue geometry:
// Queues·PerQueueP slots per step, ignoring depth caps and interference.
// A scheduler sized from it overcommits a multi-queue device by
// RawP/EffectiveParallelism.
func (m MQ) RawP() int { return m.Queues * m.PerQueueP }

// MQFromPDAM embeds a PDAM as the degenerate single-queue MQ, so every
// calibration can carry a multi-queue reading even for devices with no
// queue structure.
func MQFromPDAM(p PDAM) MQ {
	return MQ{
		Queues: 1, PerQueueP: p.P, QueueDepth: p.P,
		BlockBytes: p.BlockBytes, StepSeconds: p.StepSeconds,
	}
}

// MQReadSeconds predicts the Figure 1 thread experiment under the MQ model:
// p threads of perThreadIOs dependent block reads, spread round-robin over
// the queues. With at most Queues of them colliding per step, the effective
// service rate is a·QueueSlots(a) for a = min(p, Queues); beyond it, time
// grows by p over that rate.
func (m MQ) MQReadSeconds(p int, perThreadIOs float64) float64 {
	active := p
	if active > m.Queues {
		active = m.Queues
	}
	if active < 1 {
		active = 1
	}
	peff := float64(active * m.QueueSlots(active))
	factor := 1.0
	if f := float64(p) / peff; f > 1 {
		factor = f
	}
	return perThreadIOs * factor * m.StepSeconds
}

// ---------------------------------------------------------------------------
// Prediction-error helpers (§4 claims E7/E8)

// MaxRelError returns max_i |measured_i - predicted_i| / measured_i. It
// panics on length mismatch and ignores zero measurements.
func MaxRelError(measured, predicted []float64) float64 {
	if len(measured) != len(predicted) {
		panic("core: mismatched series")
	}
	worst := 0.0
	for i := range measured {
		if measured[i] == 0 {
			continue
		}
		e := math.Abs(measured[i]-predicted[i]) / measured[i]
		if e > worst {
			worst = e
		}
	}
	return worst
}
