package core

import (
	"math"
	"testing"
	"testing/quick"
)

// hitachi is the affine model of the paper's 1 TB Hitachi row in Table 2:
// s = 0.013 s, t = 0.000041 s per 4 KiB.
func hitachi() Affine {
	return Affine{Setup: 0.013, PerByte: 0.000041 / 4096}
}

func TestAffineBasics(t *testing.T) {
	a := hitachi()
	if got := a.Cost(0); got != a.Setup {
		t.Fatalf("Cost(0) = %v", got)
	}
	if got := a.Alpha(4096); math.Abs(got-0.00315) > 0.0001 {
		t.Fatalf("alpha per 4K = %v, Table 2 says 0.0031", got)
	}
	hb := a.HalfBandwidthBytes()
	if math.Abs(a.Cost(hb)-2*a.Setup) > 1e-12 {
		t.Fatal("half-bandwidth point does not double the setup cost")
	}
	if math.Abs(a.NormalizedCost(hb)-2) > 1e-9 {
		t.Fatal("normalized cost at half-bandwidth != 2")
	}
}

func TestAffineFromAlpha(t *testing.T) {
	a := AffineFromAlpha(0.003, 4096)
	if a.Setup != 1 {
		t.Fatal("not normalized")
	}
	if math.Abs(a.Alpha(4096)-0.003) > 1e-12 {
		t.Fatalf("alpha roundtrip = %v", a.Alpha(4096))
	}
}

// TestLemma1 verifies the 2x transform: with B at the half-bandwidth point,
// each DAM IO costs exactly twice the setup, so any affine IO of size <= B
// is within a factor of 2 of its DAM cost.
func TestLemma1(t *testing.T) {
	a := hitachi()
	d := DAMFromAffine(a)
	if math.Abs(d.UnitCost-2*a.Setup) > 1e-12 {
		t.Fatalf("unit cost = %v", d.UnitCost)
	}
	f := func(rawSize float64) bool {
		size := math.Mod(math.Abs(rawSize), d.BlockBytes) + 1
		affineCost := a.Cost(size)
		damCost := d.Cost(1) // one block covers any IO up to B
		return damCost <= 2*affineCost && affineCost <= damCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeHeightShrinksWithNodeSize(t *testing.T) {
	a := hitachi()
	p := BTreeParams{NodeBytes: 4096, EntryBytes: 128, Items: 1e8, CacheBytes: 1 << 20}
	small := p.Height()
	p.NodeBytes = 1 << 18
	big := p.Height()
	if big >= small {
		t.Fatalf("height did not shrink: %v -> %v", small, big)
	}
	_ = a
}

func TestBTreeCostUnimodal(t *testing.T) {
	// The point cost (1+αB)·h(B) must fall then rise: tiny nodes pay height,
	// huge nodes pay transfer.
	a := hitachi()
	cost := func(nb float64) float64 {
		return BTreePointCost(a, BTreeParams{NodeBytes: nb, EntryBytes: 128, Items: 1e8, CacheBytes: 1 << 28})
	}
	c4k := cost(4096)
	c64k := cost(64 << 10)
	c64m := cost(64 << 20)
	if !(c64k < c4k) {
		t.Fatalf("64KiB (%v) not cheaper than 4KiB (%v)", c64k, c4k)
	}
	if !(c64k < c64m) {
		t.Fatalf("64KiB (%v) not cheaper than 64MiB (%v)", c64k, c64m)
	}
}

// TestCorollary7 checks both the numeric optimizer and the closed form: the
// optimal B-tree node is below the half-bandwidth point by roughly ln(1/α).
func TestCorollary7(t *testing.T) {
	a := hitachi()
	opt := OptimalBTreeNodeBytes(a, 128)
	hb := a.HalfBandwidthBytes()
	if opt >= hb {
		t.Fatalf("optimal node %v not below half-bandwidth %v", opt, hb)
	}
	if opt < hb/100 {
		t.Fatalf("optimal node %v implausibly small vs %v", opt, hb)
	}
	approx := Corollary7Approx(a, 128)
	if opt/approx > 8 || approx/opt > 8 {
		t.Fatalf("numeric %v and closed form %v disagree beyond Θ slack", opt, approx)
	}
	// It must actually be a minimum of the cost function.
	cost := func(nb float64) float64 {
		return BTreePointCost(a, BTreeParams{NodeBytes: nb, EntryBytes: 128, Items: 1e9, CacheBytes: 1})
	}
	if cost(opt) > cost(opt*2) || cost(opt) > cost(opt/2) {
		t.Fatalf("returned point is not a local minimum: %v vs %v / %v", cost(opt), cost(opt/2), cost(opt*2))
	}
}

func TestBTreeRangeAndWriteAmp(t *testing.T) {
	a := hitachi()
	p := BTreeParams{NodeBytes: 64 << 10, EntryBytes: 128, Items: 1e8, CacheBytes: 1 << 28}
	short := BTreeRangeCost(a, p, 10)
	long := BTreeRangeCost(a, p, 1e6)
	if long <= short {
		t.Fatal("long range not more expensive")
	}
	if wa := BTreeWriteAmp(p); wa != 64*1024/128.0 {
		t.Fatalf("write amp = %v", wa)
	}
}

// TestLemma8VsTheorem9 verifies the query-cost separation: the optimized
// organization is much cheaper per query at large B, and insertion costs are
// identical.
func TestLemma8VsTheorem9(t *testing.T) {
	a := hitachi()
	naive := BeTreeParams{NodeBytes: 4 << 20, EntryBytes: 128, PivotBytes: 24, Fanout: 16, Items: 1e8, CacheBytes: 1 << 28}
	opt := naive
	opt.Optimized = true
	if BeTreeInsertCost(a, naive) != BeTreeInsertCost(a, opt) {
		t.Fatal("insert costs must not depend on the query organization")
	}
	qn := BeTreePointCost(a, naive)
	qo := BeTreePointCost(a, opt)
	if qo >= qn {
		t.Fatalf("optimized query %v not cheaper than naive %v", qo, qn)
	}
	// At B = 4 MiB, F = 16 on the Hitachi profile: naive per level pays
	// s+αB = 0.055s, optimized (s+αB/F)·(1+1/ln F) ≈ 0.021s — a ~2.6x win.
	if qn/qo < 2 {
		t.Fatalf("separation only %.2fx; expected >2x", qn/qo)
	}
}

// TestCorollary10 — query-cost growth in B: nearly linear for the B-tree,
// nearly sqrt for the optimized Bε-tree with F=√B.
func TestCorollary10(t *testing.T) {
	a := hitachi()
	const entry = 128
	bq := func(nb float64) float64 {
		return BTreePointCost(a, BTreeParams{NodeBytes: nb, EntryBytes: entry, Items: 1e9, CacheBytes: 1})
	}
	eq := func(nb float64) float64 {
		f := math.Sqrt(nb / entry)
		return BeTreePointCost(a, BeTreeParams{
			NodeBytes: nb, EntryBytes: entry, PivotBytes: 24, Fanout: f,
			Items: 1e9, CacheBytes: 1, Optimized: true,
		})
	}
	// Grow B by 16x well beyond the half-bandwidth point.
	b0 := 4 * a.HalfBandwidthBytes()
	btreeGrowth := bq(16*b0) / bq(b0)
	betreeGrowth := eq(16*b0) / eq(b0)
	if btreeGrowth < 8 {
		t.Fatalf("B-tree query growth %v, expected near-linear (~16x)", btreeGrowth)
	}
	if betreeGrowth > 6 {
		t.Fatalf("Bε-tree query growth %v, expected near-sqrt (~4x)", betreeGrowth)
	}
}

func TestCorollary11SmallPerLevelCost(t *testing.T) {
	a := hitachi()
	// B = F² in pivot units with F well below 1/α: per-level cost ~ 1+o(1).
	f := 64.0
	p := BeTreeParams{
		NodeBytes: f * f * 24, EntryBytes: 128, PivotBytes: 24, Fanout: f,
		Items: 1e9, CacheBytes: 1, Optimized: true,
	}
	perLevel := BeTreePointCost(a, p) / p.Height() / a.Setup
	if perLevel > 1.6 {
		t.Fatalf("per-level normalized cost %v, want 1+o(1)", perLevel)
	}
}

func TestOptimalBeTreeFanout(t *testing.T) {
	a := hitachi()
	p := BeTreeParams{NodeBytes: 4 << 20, EntryBytes: 128, PivotBytes: 24, Items: 1e8, CacheBytes: 1 << 28}
	f := OptimalBeTreeFanout(a, p)
	// The optimum must be a genuine minimum of the total query cost and sit
	// at or above the per-level balance point sqrt(B/pivot) (taller trees
	// only ever hurt once per-level costs are balanced).
	cost := func(f float64) float64 {
		q := p
		q.Fanout = f
		q.Optimized = true
		return BeTreePointCost(a, q)
	}
	if cost(f) > cost(f/2) || cost(f) > cost(f*2) {
		t.Fatalf("fanout %v is not a local minimum", f)
	}
	if balance := math.Sqrt(p.NodeBytes / p.PivotBytes); f < balance/2 {
		t.Fatalf("fanout %v below per-level balance point %v", f, balance)
	}
}

func TestOptimalBeTreeParams(t *testing.T) {
	a := hitachi()
	fanout, nodeBytes := OptimalBeTreeParams(a, 128, 24)
	if fanout <= 1 {
		t.Fatalf("fanout = %v", fanout)
	}
	if math.Abs(nodeBytes-fanout*fanout*24) > 1 {
		t.Fatalf("node bytes %v != F²·pivot", nodeBytes)
	}
	// Corollary 12: the optimized Bε-tree's query cost matches the optimal
	// B-tree's up to low-order terms, while inserting faster.
	bp := BTreeParams{NodeBytes: OptimalBTreeNodeBytes(a, 128), EntryBytes: 128, Items: 1e9, CacheBytes: 1}
	ep := BeTreeParams{NodeBytes: nodeBytes, EntryBytes: 128, PivotBytes: 24, Fanout: fanout,
		Items: 1e9, CacheBytes: 1, Optimized: true}
	bq, eq := BTreePointCost(a, bp), BeTreePointCost(a, ep)
	if eq > 1.5*bq {
		t.Fatalf("Bε query %v not within low-order of B-tree %v", eq, bq)
	}
	bi, ei := BTreePointCost(a, bp), BeTreeInsertCost(a, ep)
	if ei >= bi {
		t.Fatalf("Bε insert %v not faster than B-tree %v", ei, bi)
	}
}

func TestBeTreeWriteAmpBelowBTree(t *testing.T) {
	bt := BTreeParams{NodeBytes: 1 << 20, EntryBytes: 128, Items: 1e8, CacheBytes: 1 << 28}
	be := BeTreeParams{NodeBytes: 1 << 20, EntryBytes: 128, PivotBytes: 24, Fanout: 16, Items: 1e8, CacheBytes: 1 << 28}
	if BeTreeWriteAmp(be) >= BTreeWriteAmp(bt) {
		t.Fatalf("Bε write amp %v not below B-tree %v", BeTreeWriteAmp(be), BTreeWriteAmp(bt))
	}
}

// TestTable3 regenerates the sensitivity table and checks its qualitative
// content: B-tree insert ≈ query; Bε insert far cheaper; growth with B is
// linear for the B-tree and much flatter for the Bε-tree.
func TestTable3(t *testing.T) {
	const alpha, logNM = 0.003, 10.0
	atB := func(B float64) []Table3Row { return Table3(alpha, B, logNM, 16) }
	small := atB(64)
	big := atB(64 * 64)
	if len(small) != 3 {
		t.Fatalf("rows = %d", len(small))
	}
	if small[0].Insert != small[0].Query {
		t.Fatal("B-tree insert != query in the model")
	}
	if small[1].Insert >= small[0].Insert {
		t.Fatal("Bε insert not cheaper than B-tree")
	}
	bGrow := big[0].Query / small[0].Query
	eGrow := big[1].Query / small[1].Query
	if bGrow/eGrow < 3 {
		t.Fatalf("B-tree growth %v vs Bε %v: sensitivity gap missing", bGrow, eGrow)
	}
}

func TestPDAMPredictions(t *testing.T) {
	m := PDAM{P: 4, BlockBytes: 64 << 10, StepSeconds: 0.001}
	flat := m.PDAMReadSeconds(1, 1000)
	if m.PDAMReadSeconds(4, 1000) != flat {
		t.Fatal("time should be constant up to P threads")
	}
	if got := m.PDAMReadSeconds(8, 1000); math.Abs(got-2*flat) > 1e-12 {
		t.Fatalf("p=2P time = %v, want 2x flat", got)
	}
	// DAM overestimates by P at saturation.
	ratio := m.DAMReadSeconds(64, 1000) / m.PDAMReadSeconds(64, 1000)
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("DAM/PDAM ratio = %v, want P=4", ratio)
	}
}

func TestLemma13(t *testing.T) {
	const items, nodeEntries, blockEntries = 1e9, 1 << 16, 1 << 8
	// k=1 gets all P blocks per step: fewer steps than k=P clients each
	// getting one block per step.
	s1 := Lemma13QuerySteps(items, nodeEntries, blockEntries, 1, 16)
	sP := Lemma13QuerySteps(items, nodeEntries, blockEntries, 16, 16)
	if s1 >= sP {
		t.Fatalf("single client steps %v not below saturated %v", s1, sP)
	}
	// Throughput grows with k even though per-query latency does too.
	t1 := Lemma13Throughput(items, nodeEntries, blockEntries, 1, 16)
	tP := Lemma13Throughput(items, nodeEntries, blockEntries, 16, 16)
	if tP <= t1 {
		t.Fatalf("throughput at k=P (%v) not above k=1 (%v)", tP, t1)
	}
}

func TestMaxRelError(t *testing.T) {
	if MaxRelError([]float64{10, 20}, []float64{11, 18}) != 0.1 {
		t.Fatal("wrong max error")
	}
	if MaxRelError([]float64{0, 10}, []float64{5, 10}) != 0 {
		t.Fatal("zero measurement not skipped")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxRelError([]float64{1}, []float64{1, 2})
}

func TestHeightEdgeCases(t *testing.T) {
	p := BTreeParams{NodeBytes: 128, EntryBytes: 128, Items: 100, CacheBytes: 1 << 20}
	if h := p.Height(); !math.IsInf(h, 1) {
		t.Fatalf("fanout 1 height = %v, want +Inf", h)
	}
	p2 := BTreeParams{NodeBytes: 4096, EntryBytes: 128, Items: 10, CacheBytes: 1 << 30}
	if h := p2.Height(); h != 0 {
		t.Fatalf("fully cached height = %v, want 0", h)
	}
	be := BeTreeParams{Fanout: 1, EntryBytes: 128, Items: 100, CacheBytes: 1}
	if h := be.Height(); !math.IsInf(h, 1) {
		t.Fatalf("Bε fanout 1 height = %v", h)
	}
}
