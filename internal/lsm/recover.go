// Checkpoint/Open: the LSM-tree's half of engine crash recovery. Unlike
// the B-trees, the LSM keeps real volatile state outside the engine — the
// memtable — so Checkpoint first flushes it to an L0 run (the SSTables land
// on freshly allocated extents, never overwriting anything an earlier
// checkpoint references), then serializes the level structure: per table,
// its extent, key range, entry count, and block index.

package lsm

import (
	"fmt"

	"iomodels/internal/engine"
	"iomodels/internal/kv"
)

const manifestMagic = 0x4C534D43 // "LSMC"

// Checkpoint implements engine.RecoverableDict: it flushes the memtable and
// returns a manifest from which Open reconstructs the tree against a
// recovered engine.
func (t *Tree) Checkpoint() []byte {
	t.flushMemtable()
	var e kv.Enc
	e.U32(manifestMagic)
	e.U64(uint64(t.items))
	e.U64(uint64(t.LogicalBytesInserted))
	e.U64(uint64(t.Compactions))
	e.U32(uint32(len(t.levels)))
	for _, level := range t.levels {
		e.U32(uint32(len(level)))
		for _, tb := range level {
			e.U64(uint64(tb.off))
			e.U64(uint64(tb.size))
			e.U64(uint64(tb.count))
			e.Bytes(tb.minKey)
			e.Bytes(tb.maxKey)
			e.U32(uint32(len(tb.blockIx)))
			for _, k := range tb.blockIx {
				e.Bytes(k)
			}
		}
	}
	return e.Buf
}

// Open reconstructs a tree from a Checkpoint manifest on a recovered
// engine. cfg must match the configuration the tree was created with
// (BlockBytes determines block-index geometry). The memtable starts empty:
// whatever it held at the crash is replayed from the WAL.
func Open(cfg Config, eng *engine.Engine, manifest []byte) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &kv.Dec{Buf: manifest}
	if magic := d.U32(); magic != manifestMagic {
		return nil, fmt.Errorf("lsm: bad manifest magic %#x", magic)
	}
	t := &Tree{cfg: cfg, eng: eng, owner: eng.Owner()}
	t.items = int(d.U64())
	t.LogicalBytesInserted = int64(d.U64())
	t.Compactions = int64(d.U64())
	nLevels := d.U32()
	for li := uint32(0); li < nLevels && d.Err == nil; li++ {
		nTables := d.U32()
		level := make([]*table, 0, nTables)
		for ti := uint32(0); ti < nTables && d.Err == nil; ti++ {
			tb := &table{
				off:    int64(d.U64()),
				size:   int64(d.U64()),
				count:  int(d.U64()),
				minKey: d.Bytes(),
				maxKey: d.Bytes(),
			}
			nBlocks := d.U32()
			for bi := uint32(0); bi < nBlocks && d.Err == nil; bi++ {
				tb.blockIx = append(tb.blockIx, d.Bytes())
			}
			level = append(level, tb)
		}
		t.levels = append(t.levels, level)
	}
	if d.Err != nil {
		return nil, fmt.Errorf("lsm: corrupt manifest: %w", d.Err)
	}
	return t, nil
}

var _ engine.RecoverableDict = (*Tree)(nil)
