package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/sim"
	"iomodels/internal/stats"
)

func newTestEngine() *engine.Engine {
	clk := sim.New()
	return engine.New(engine.Config{CacheBytes: 1 << 20, Shards: 1},
		hdd.NewDeterministic(hdd.DefaultProfile()), clk)
}

func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tree, err := New(cfg, newTestEngine())
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// smallConfig forces frequent flushes and compactions.
func smallConfig() Config {
	return Config{
		MemtableBytes: 4 << 10,
		SSTableBytes:  16 << 10,
		GrowthFactor:  4,
		Level0Runs:    2,
		BlockBytes:    1 << 10,
	}
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestEmptyTree(t *testing.T) {
	tree := newTestTree(t, DefaultConfig())
	if _, ok := tree.Get(key(1)); ok {
		t.Fatal("found key in empty tree")
	}
	tree.Scan(nil, nil, func(k, v []byte) bool { t.Fatal("scan emitted"); return false })
}

func TestPutGetMemtableOnly(t *testing.T) {
	tree := newTestTree(t, DefaultConfig())
	for i := 0; i < 100; i++ {
		tree.Put(key(i), value(i))
	}
	for i := 0; i < 100; i++ {
		v, ok := tree.Get(key(i))
		if !ok || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
}

func TestFlushAndCompaction(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	const n = 5000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	if tree.Levels() < 2 {
		t.Fatalf("levels = %d, compaction never ran", tree.Levels())
	}
	if tree.Compactions == 0 {
		t.Fatal("no compactions counted")
	}
	for i := 0; i < n; i++ {
		v, ok := tree.Get(key(i))
		if !ok || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get(%d) lost after compaction: %v", i, ok)
		}
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	tree.Put(key(42), []byte("old"))
	for i := 1000; i < 4000; i++ {
		tree.Put(key(i), value(i)) // push the old version down
	}
	tree.Put(key(42), []byte("new"))
	v, ok := tree.Get(key(42))
	if !ok || string(v) != "new" {
		t.Fatalf("got %q, %v", v, ok)
	}
}

func TestDeleteTombstones(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	const n = 3000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	for i := 0; i < n; i += 2 {
		tree.Delete(key(i))
	}
	for i := 0; i < n; i++ {
		_, ok := tree.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
}

func TestScan(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	const n = 3000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Delete(key(101))
	tree.Put(key(100), []byte("fresh"))
	var got []string
	tree.Scan(key(95), key(105), func(k, v []byte) bool {
		got = append(got, fmt.Sprintf("%s=%s", k, v))
		return true
	})
	if len(got) != 9 {
		t.Fatalf("scan returned %d: %v", len(got), got)
	}
	if got[5] != string(key(100))+"=fresh" {
		t.Fatalf("overwrite not reflected: %v", got[5])
	}
}

func TestScanEarlyStop(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	for i := 0; i < 1000; i++ {
		tree.Put(key(i), value(i))
	}
	count := 0
	tree.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop at %d", count)
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	model := map[string]string{}
	rng := stats.NewRNG(31337)
	const ops = 15000
	for i := 0; i < ops; i++ {
		id := int(rng.Intn(1200))
		k := key(id)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := fmt.Sprintf("v%d-%d", id, i)
			tree.Put(k, []byte(v))
			model[string(k)] = v
		case 5, 6:
			tree.Delete(k)
			delete(model, string(k))
		default:
			v, ok := tree.Get(k)
			mv, mok := model[string(k)]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("op %d: Get(%d) = %q,%v; model %q,%v", i, id, v, ok, mv, mok)
			}
		}
	}
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	var gotKeys []string
	tree.Scan(nil, nil, func(k, v []byte) bool {
		gotKeys = append(gotKeys, string(k))
		if model[string(k)] != string(v) {
			t.Fatalf("scan value mismatch at %s", k)
		}
		return true
	})
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("scan %d keys, model %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("scan[%d] = %s, want %s", i, gotKeys[i], wantKeys[i])
		}
	}
}

func TestWriteAmplificationBounded(t *testing.T) {
	tree := newTestTree(t, smallConfig())
	const n = 20000
	for i := 0; i < n; i++ {
		tree.Put(key(i), value(i))
	}
	tree.Flush()
	c := tree.eng.Counters()
	wa := float64(c.BytesWritten) / float64(tree.LogicalBytesInserted)
	if wa < 1 {
		t.Fatalf("write amp %v below 1", wa)
	}
	// Leveled compaction: WA ~ growth factor x levels; with factor 4 and a
	// few levels this must stay well under a B-tree's node-size WA.
	if wa > 40 {
		t.Fatalf("write amp %v implausibly high", wa)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}, newTestEngine()); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestEmptyKeyPanics(t *testing.T) {
	tree := newTestTree(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.Put(nil, []byte("v"))
}
