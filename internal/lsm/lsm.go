// Package lsm implements a leveled log-structured merge tree in the style
// of LevelDB — the third write-optimized dictionary family the paper
// discusses alongside Bε-trees (§1: "LevelDB's LSM-tree uses 2 MiB SSTables
// for all workloads"). It serves as an extra baseline in the
// write-amplification experiment (E12) and the examples.
//
// Structure: an in-memory memtable absorbs updates; when full it is written
// as a sorted run (SSTable) into level 0. Level 0 runs may overlap; levels
// 1..k hold non-overlapping SSTables with per-level byte budgets growing by
// GrowthFactor. When a level overflows, one SSTable is merged into the
// overlapping tables of the next level (tombstones are dropped when the
// merge reaches the bottom). All SSTable reads and writes go through the
// simulated disk, so write amplification is measured, not modeled.
package lsm

import (
	"fmt"
	"sort"

	"iomodels/internal/engine"
	"iomodels/internal/kv"
)

// Config shapes a tree.
type Config struct {
	// MemtableBytes is the in-memory buffer budget before a flush.
	MemtableBytes int
	// SSTableBytes is the target size of one sorted run (LevelDB: 2 MiB).
	SSTableBytes int
	// GrowthFactor is the per-level size ratio (LevelDB: 10).
	GrowthFactor int
	// Level0Runs is how many runs level 0 may hold before compacting.
	Level0Runs int
	// BlockBytes is the read granularity for point lookups within a table.
	BlockBytes int
}

// DefaultConfig mirrors LevelDB's shape at reduced scale.
func DefaultConfig() Config {
	return Config{
		MemtableBytes: 1 << 20,
		SSTableBytes:  2 << 20,
		GrowthFactor:  10,
		Level0Runs:    4,
		BlockBytes:    4 << 10,
	}
}

func (c Config) validate() error {
	if c.MemtableBytes <= 0 || c.SSTableBytes <= 0 || c.GrowthFactor < 2 || c.Level0Runs < 1 || c.BlockBytes <= 0 {
		return fmt.Errorf("lsm: invalid config")
	}
	return nil
}

// entry is a memtable/SSTable record; a nil value with tombstone set marks
// a deletion.
type entry struct {
	key       []byte
	value     []byte
	tombstone bool
}

func (e entry) size() int { return kv.EncodedEntrySize(e.key, e.value) + 1 }

// table is the in-memory index of one on-disk SSTable.
type table struct {
	off     int64
	size    int64
	minKey  []byte
	maxKey  []byte
	count   int
	blockIx [][]byte // first key of each BlockBytes block, for lookup reads
}

// Tree is a leveled LSM-tree on a shared storage engine. Mutations run on
// the engine's owner client (single writer); concurrent reads go through
// per-client Sessions.
type Tree struct {
	cfg    Config
	eng    *engine.Engine
	owner  *engine.Client
	mem    []entry // sorted by key
	memB   int
	levels [][]*table // levels[0] newest-first runs; levels[i>0] sorted, disjoint
	items  int

	// LogicalBytesInserted accumulates payload bytes of Put calls.
	LogicalBytesInserted int64
	// Compactions counts merge operations.
	Compactions int64
}

// New creates an empty tree on the engine's device.
func New(cfg Config, eng *engine.Engine) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Tree{
		cfg:   cfg,
		eng:   eng,
		owner: eng.Owner(),
	}, nil
}

// Engine returns the storage engine backing the tree.
func (t *Tree) Engine() *engine.Engine { return t.eng }

// Items returns an upper bound on live keys (exact after a full compaction;
// overwrites and tombstones in upper levels are not yet deduplicated).
func (t *Tree) Items() int { return t.items }

// Levels returns the number of populated levels (including L0).
func (t *Tree) Levels() int { return len(t.levels) }

// memFind returns the position of key in the memtable.
func (t *Tree) memFind(key []byte) (int, bool) {
	i := sort.Search(len(t.mem), func(i int) bool {
		return kv.Compare(t.mem[i].key, key) >= 0
	})
	if i < len(t.mem) && kv.Compare(t.mem[i].key, key) == 0 {
		return i, true
	}
	return i, false
}

func (t *Tree) memInsert(e entry) {
	i, found := t.memFind(e.key)
	if found {
		t.memB += e.size() - t.mem[i].size()
		t.mem[i] = e
	} else {
		t.mem = append(t.mem, entry{})
		copy(t.mem[i+1:], t.mem[i:])
		t.mem[i] = e
		t.memB += e.size()
	}
	if t.memB > t.cfg.MemtableBytes {
		t.flushMemtable()
	}
}

// Put inserts or replaces key.
func (t *Tree) Put(key, value []byte) {
	if len(key) == 0 {
		panic("lsm: empty key")
	}
	t.LogicalBytesInserted += int64(len(key) + len(value))
	t.memInsert(entry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
}

// Delete writes a tombstone for key. It always returns true: the tombstone
// is accepted whether or not the key is present below.
func (t *Tree) Delete(key []byte) bool {
	t.memInsert(entry{key: append([]byte(nil), key...), tombstone: true})
	return true
}

// Get returns the value for key: memtable, then L0 runs newest-first, then
// one candidate table per deeper level.
func (t *Tree) Get(key []byte) ([]byte, bool) { return t.getKey(t.owner, key) }

func (t *Tree) getKey(c *engine.Client, key []byte) ([]byte, bool) {
	if i, ok := t.memFind(key); ok {
		e := t.mem[i]
		if e.tombstone {
			return nil, false
		}
		return e.value, true
	}
	for li, level := range t.levels {
		for _, tb := range t.candidates(li, level, key) {
			e, found := t.tableGet(c, tb, key)
			if found {
				if e.tombstone {
					return nil, false
				}
				return e.value, true
			}
		}
	}
	return nil, false
}

// candidates returns the tables in a level that may contain key, in
// newest-first order for L0.
func (t *Tree) candidates(li int, level []*table, key []byte) []*table {
	var out []*table
	if li == 0 {
		for _, tb := range level {
			if kv.Compare(key, tb.minKey) >= 0 && kv.Compare(key, tb.maxKey) <= 0 {
				out = append(out, tb)
			}
		}
		return out
	}
	i := sort.Search(len(level), func(i int) bool {
		return kv.Compare(level[i].maxKey, key) >= 0
	})
	if i < len(level) && kv.Compare(key, level[i].minKey) >= 0 {
		out = append(out, level[i])
	}
	return out
}

// tableGet performs a point lookup inside one SSTable: the in-memory block
// index narrows the key to one block, which is read and scanned — one IO of
// BlockBytes, as in LevelDB.
func (t *Tree) tableGet(c *engine.Client, tb *table, key []byte) (entry, bool) {
	bi := sort.Search(len(tb.blockIx), func(i int) bool {
		return kv.Compare(tb.blockIx[i], key) > 0
	}) - 1
	if bi < 0 {
		return entry{}, false
	}
	start := int64(bi) * int64(t.cfg.BlockBytes)
	size := int64(t.cfg.BlockBytes)
	if start+size > tb.size {
		size = tb.size - start
	}
	buf := make([]byte, size)
	c.ReadAt(buf, tb.off+start)
	// Entries never span blocks (the writer pads); scan the block.
	d := kv.Dec{Buf: buf}
	for d.Off < len(buf) {
		marker := d.U8()
		if marker == 0 || d.Err != nil { // padding
			break
		}
		e := entry{tombstone: marker == 2}
		e.key = d.Bytes()
		e.value = d.Bytes()
		if d.Err != nil {
			panic(fmt.Sprintf("lsm: corrupt block in table at %d", tb.off))
		}
		c := kv.Compare(e.key, key)
		if c == 0 {
			return e, true
		}
		if c > 0 {
			break
		}
	}
	return entry{}, false
}

// flushMemtable writes the memtable as a new L0 run.
func (t *Tree) flushMemtable() {
	if len(t.mem) == 0 {
		return
	}
	run := t.writeTable(t.mem)
	if len(t.levels) == 0 {
		t.levels = append(t.levels, nil)
	}
	// Newest first.
	t.levels[0] = append([]*table{run}, t.levels[0]...)
	t.items += len(t.mem)
	t.mem = nil
	t.memB = 0
	t.maybeCompact()
}

// Flush forces the memtable to disk (end of a load phase).
func (t *Tree) Flush() { t.flushMemtable() }

// writeTable serializes sorted entries into one on-disk SSTable, padding so
// no entry spans a BlockBytes boundary, and returns its index.
func (t *Tree) writeTable(entries []entry) *table {
	var e kv.Enc
	tb := &table{count: len(entries)}
	tb.minKey = append([]byte(nil), entries[0].key...)
	tb.maxKey = append([]byte(nil), entries[len(entries)-1].key...)
	for _, ent := range entries {
		sz := ent.size()
		blockPos := len(e.Buf) % t.cfg.BlockBytes
		if blockPos+sz > t.cfg.BlockBytes && blockPos != 0 {
			// Pad to the next block boundary.
			pad := t.cfg.BlockBytes - blockPos
			e.Buf = append(e.Buf, make([]byte, pad)...)
		}
		if len(e.Buf)%t.cfg.BlockBytes == 0 {
			tb.blockIx = append(tb.blockIx, append([]byte(nil), ent.key...))
		}
		marker := uint8(1)
		if ent.tombstone {
			marker = 2
		}
		e.U8(marker)
		e.Bytes(ent.key)
		e.Bytes(ent.value)
	}
	tb.size = int64(len(e.Buf))
	tb.off = t.eng.Alloc(tb.size)
	t.owner.WriteAt(e.Buf, tb.off)
	return tb
}

// readTable loads a whole SSTable (used by compaction and scans).
func (t *Tree) readTable(c *engine.Client, tb *table) []entry {
	buf := make([]byte, tb.size)
	c.ReadAt(buf, tb.off)
	d := kv.Dec{Buf: buf}
	out := make([]entry, 0, tb.count)
	for len(out) < tb.count {
		marker := d.U8()
		if marker == 0 {
			// Skip padding: it runs from the byte we just read to the next
			// block boundary.
			padStart := d.Off - 1
			next := (padStart/t.cfg.BlockBytes + 1) * t.cfg.BlockBytes
			if next >= len(buf) {
				panic(fmt.Sprintf("lsm: table at %d truncated: %d/%d entries", tb.off, len(out), tb.count))
			}
			d.Off = next
			continue
		}
		e := entry{tombstone: marker == 2}
		e.key = d.Bytes()
		e.value = d.Bytes()
		if d.Err != nil {
			panic(fmt.Sprintf("lsm: corrupt table at %d: %v", tb.off, d.Err))
		}
		out = append(out, e)
	}
	return out
}

func (t *Tree) dropTable(tb *table) {
	t.eng.Free(tb.off, tb.size)
}

// levelBudget returns the byte budget of level li (L0 is counted in runs).
func (t *Tree) levelBudget(li int) int64 {
	b := int64(t.cfg.SSTableBytes) * int64(t.cfg.GrowthFactor)
	for i := 1; i < li; i++ {
		b *= int64(t.cfg.GrowthFactor)
	}
	return b
}

func levelBytes(level []*table) int64 {
	var s int64
	for _, tb := range level {
		s += tb.size
	}
	return s
}

// maybeCompact restores the level invariants after a flush.
func (t *Tree) maybeCompact() {
	for li := 0; li < len(t.levels); li++ {
		if li == 0 {
			for len(t.levels[0]) > t.cfg.Level0Runs {
				t.compactInto(0, len(t.levels[0])-1) // oldest run first
			}
			continue
		}
		for levelBytes(t.levels[li]) > t.levelBudget(li) {
			t.compactInto(li, 0) // first table (round-robin would also do)
		}
	}
}

// compactInto merges table ti of level li into level li+1.
func (t *Tree) compactInto(li, ti int) {
	t.Compactions++
	src := t.levels[li][ti]
	t.levels[li] = append(t.levels[li][:ti], t.levels[li][ti+1:]...)
	if li+1 >= len(t.levels) {
		t.levels = append(t.levels, nil)
	}
	next := t.levels[li+1]

	// Find overlapping tables in the next level.
	lo := sort.Search(len(next), func(i int) bool {
		return kv.Compare(next[i].maxKey, src.minKey) >= 0
	})
	hi := lo
	for hi < len(next) && kv.Compare(next[hi].minKey, src.maxKey) <= 0 {
		hi++
	}
	overlapping := next[lo:hi]

	// Merge: src is newer than everything below it.
	merged := t.readTable(t.owner, src)
	t.dropTable(src)
	for _, tb := range overlapping {
		merged = mergeRuns(merged, t.readTable(t.owner, tb))
		t.dropTable(tb)
	}
	bottom := li+1 == len(t.levels)-1 && hi == len(next)
	if bottom {
		merged = dropTombstones(merged)
	}

	// Rewrite as SSTable-sized chunks.
	var newTables []*table
	for start := 0; start < len(merged); {
		end, bytes := start, 0
		for end < len(merged) && bytes < t.cfg.SSTableBytes {
			bytes += merged[end].size()
			end++
		}
		newTables = append(newTables, t.writeTable(merged[start:end]))
		start = end
	}
	out := make([]*table, 0, len(next)-(hi-lo)+len(newTables))
	out = append(out, next[:lo]...)
	out = append(out, newTables...)
	out = append(out, next[hi:]...)
	t.levels[li+1] = out
}

// mergeRuns merges two sorted runs; newer wins on key collisions.
func mergeRuns(newer, older []entry) []entry {
	out := make([]entry, 0, len(newer)+len(older))
	i, j := 0, 0
	for i < len(newer) && j < len(older) {
		c := kv.Compare(newer[i].key, older[j].key)
		switch {
		case c < 0:
			out = append(out, newer[i])
			i++
		case c > 0:
			out = append(out, older[j])
			j++
		default:
			out = append(out, newer[i])
			i++
			j++
		}
	}
	out = append(out, newer[i:]...)
	out = append(out, older[j:]...)
	return out
}

func dropTombstones(entries []entry) []entry {
	out := entries[:0]
	for _, e := range entries {
		if !e.tombstone {
			out = append(out, e)
		}
	}
	return out
}

// Scan calls fn for each live entry with lo <= key < hi in key order (hi
// nil = unbounded), merging the memtable and every level.
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) {
	t.scan(t.owner, lo, hi, fn)
}

func (t *Tree) scan(c *engine.Client, lo, hi []byte, fn func(key, value []byte) bool) {
	// Collect all runs, newest first.
	var runs [][]entry
	if len(t.mem) > 0 {
		runs = append(runs, t.mem)
	}
	for li, level := range t.levels {
		if li == 0 {
			for _, tb := range level {
				runs = append(runs, t.readTable(c, tb))
			}
			continue
		}
		var run []entry
		for _, tb := range level {
			if hi != nil && kv.Compare(tb.minKey, hi) >= 0 {
				break
			}
			if lo != nil && kv.Compare(tb.maxKey, lo) < 0 {
				continue
			}
			run = append(run, t.readTable(c, tb)...)
		}
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	var acc []entry
	for i := len(runs) - 1; i >= 0; i-- { // oldest to newest: newer wins
		acc = mergeRuns(runs[i], acc)
	}
	for _, e := range acc {
		if lo != nil && kv.Compare(e.key, lo) < 0 {
			continue
		}
		if hi != nil && kv.Compare(e.key, hi) >= 0 {
			break
		}
		if e.tombstone {
			continue
		}
		if !fn(e.key, e.value) {
			return
		}
	}
}
