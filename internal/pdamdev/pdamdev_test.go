package pdamdev

import (
	"testing"

	"iomodels/internal/sim"
	"iomodels/internal/storage"
)

func TestSubmitWithinOneStep(t *testing.T) {
	d := New(4, 4096, sim.Millisecond)
	done := d.Submit(0, 3)
	if done != sim.Millisecond {
		t.Fatalf("done = %v, want end of step 0", done)
	}
	// One slot left in step 0.
	if d.SlotsFreeAt(0) != 1 {
		t.Fatalf("free = %d", d.SlotsFreeAt(0))
	}
}

func TestSubmitSpillsToNextStep(t *testing.T) {
	d := New(2, 4096, sim.Millisecond)
	done := d.Submit(0, 5) // 2+2+1 across steps 0,1,2
	if done != 3*sim.Millisecond {
		t.Fatalf("done = %v, want end of step 2", done)
	}
	if d.TotalIOs != 5 {
		t.Fatalf("TotalIOs = %d", d.TotalIOs)
	}
}

func TestLaterArrivalUsesItsOwnStep(t *testing.T) {
	d := New(2, 4096, sim.Millisecond)
	d.Submit(0, 2) // fills step 0
	done := d.Submit(sim.Millisecond+1, 1)
	if done != 2*sim.Millisecond {
		t.Fatalf("done = %v, want end of step 1", done)
	}
}

func TestContentionBetweenClients(t *testing.T) {
	d := New(2, 4096, sim.Millisecond)
	a := d.Submit(0, 2)
	b := d.Submit(0, 2) // same step, no slots left: pushed to step 1
	if a != sim.Millisecond || b != 2*sim.Millisecond {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

func TestZeroSubmit(t *testing.T) {
	d := New(2, 4096, sim.Millisecond)
	if got := d.Submit(42, 0); got != 42 {
		t.Fatalf("Submit(_, 0) = %v", got)
	}
}

func TestNegativeSubmitPanics(t *testing.T) {
	d := New(2, 4096, sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Submit(0, -1)
}

func TestStepOf(t *testing.T) {
	d := New(1, 1, 10)
	if d.StepOf(0) != 0 || d.StepOf(9) != 0 || d.StepOf(10) != 1 {
		t.Fatal("StepOf wrong")
	}
	if d.EndOfStep(0) != 10 || d.EndOfStep(3) != 40 {
		t.Fatal("EndOfStep wrong")
	}
}

func TestThroughputSaturatesAtP(t *testing.T) {
	// 8 clients on a P=4 device, each needing 1 IO per "query": per step only
	// 4 complete, so 80 queries take 20 steps.
	d := New(4, 4096, sim.Millisecond)
	eng := sim.New()
	var finish sim.Time
	for c := 0; c < 8; c++ {
		eng.Go(func(p *sim.Proc) {
			for q := 0; q < 10; q++ {
				done := d.Submit(p.Now(), 1)
				p.SleepUntil(done)
			}
			if p.Now() > finish {
				finish = p.Now()
			}
		})
	}
	eng.Run()
	if finish != 20*sim.Millisecond {
		t.Fatalf("finish = %v, want 20ms", finish)
	}
}

func TestPruneKeepsCorrectness(t *testing.T) {
	d := New(1, 1, 1)
	var now sim.Time
	for i := 0; i < 10000; i++ {
		now = d.Submit(now, 1)
	}
	if now != 10000 {
		t.Fatalf("now = %v", now)
	}
}

func TestInvalidNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 4096, sim.Millisecond)
}

// TestParamsRoundTrip: the hints the serving and observability layers read
// off the device are exactly its configuration — Params echoes (P, B, step),
// ParallelismHint is P, and a PDAM built from Params predicts the device's
// own completion times (this device IS the model).
func TestParamsRoundTrip(t *testing.T) {
	const wantP, wantB = 6, int64(8 << 10)
	wantStep := 2 * sim.Millisecond
	s := New(wantP, wantB, wantStep).Storage(1 << 30)
	p, block, step := s.Params()
	if p != wantP || block != wantB || step != wantStep {
		t.Fatalf("Params = (%d, %d, %v), want (%d, %d, %v)", p, block, step, wantP, wantB, wantStep)
	}
	if s.ParallelismHint() != wantP {
		t.Fatalf("ParallelismHint = %d, want %d", s.ParallelismHint(), wantP)
	}
	// 3P blocks from t=0 pack P per step: done at the end of step 2, which
	// is what the closed form says for one thread issuing 3P blocks.
	done := s.Access(0, storage.Read, 0, 3*int64(wantP)*wantB)
	if want := 3 * wantStep; done != want {
		t.Fatalf("3P blocks done at %v, want %v", done, want)
	}
}
