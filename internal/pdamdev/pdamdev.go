// Package pdamdev implements the abstract PDAM device of the paper's
// Definition 1: in each time step the device serves up to P IOs, each of
// size B; unused slots in a step are wasted; performance is measured in time
// steps. The §8 experiment (Lemma 13) runs concurrent query clients against
// this device.
//
// Unlike internal/ssd — a mechanistic simulator used to *validate* the PDAM —
// this device *is* the model, used to explore algorithm design within it.
package pdamdev

import (
	"fmt"

	"iomodels/internal/sim"
	"iomodels/internal/storage"
)

// Device is a PDAM storage device. It is driven at virtual time granularity
// but all service happens on step boundaries. Safe for use by many sim
// processes (the engine serializes them).
type Device struct {
	P          int      // IOs served per time step
	BlockBytes int64    // B, the IO size
	StepTime   sim.Time // wall-clock length of one time step

	usage      map[int64]int // step index -> slots consumed
	TotalIOs   int64
	pruneBelow int64
}

// New creates a PDAM device serving p IOs of blockBytes per step of
// stepTime.
func New(p int, blockBytes int64, stepTime sim.Time) *Device {
	if p <= 0 || blockBytes <= 0 || stepTime <= 0 {
		panic("pdamdev: invalid parameters")
	}
	return &Device{P: p, BlockBytes: blockBytes, StepTime: stepTime, usage: make(map[int64]int)}
}

// StepOf returns the index of the step containing virtual time t.
func (d *Device) StepOf(t sim.Time) int64 { return int64(t) / int64(d.StepTime) }

// EndOfStep returns the completion instant of step s (IOs served in step s
// are available at its end).
func (d *Device) EndOfStep(s int64) sim.Time { return sim.Time(s+1) * d.StepTime }

// Submit schedules n block IOs issued at time now and returns the completion
// time of the last one. IOs are packed greedily into the earliest steps with
// free slots, starting with the step containing now. Submitting zero blocks
// returns now.
func (d *Device) Submit(now sim.Time, n int) sim.Time {
	if n < 0 {
		panic("pdamdev: negative IO count")
	}
	if n == 0 {
		return now
	}
	d.TotalIOs += int64(n)
	step := d.StepOf(now)
	d.prune(step)
	var done sim.Time
	for n > 0 {
		free := d.P - d.usage[step]
		if free > 0 {
			take := free
			if take > n {
				take = n
			}
			d.usage[step] += take
			n -= take
			done = d.EndOfStep(step)
		}
		step++
	}
	return done
}

// SlotsFreeAt reports how many IO slots remain in the step containing t.
func (d *Device) SlotsFreeAt(t sim.Time) int {
	free := d.P - d.usage[d.StepOf(t)]
	if free < 0 {
		panic(fmt.Sprintf("pdamdev: overcommitted step %d", d.StepOf(t)))
	}
	return free
}

// Storage adapts the PDAM device to the storage.Device interface so the
// real dictionaries (B-tree, Bε-tree, ...) can run on the abstract model
// through the engine layer: an IO of any size costs ceil(size/B) block
// IOs, packed into the earliest time steps with free slots. Reads and
// writes are symmetric, as in Definition 1.
type Storage struct {
	dev      *Device
	capacity int64
}

// Storage wraps the device as a storage.Device with the given byte
// capacity.
func (d *Device) Storage(capacity int64) *Storage {
	if capacity <= 0 {
		panic("pdamdev: invalid capacity")
	}
	return &Storage{dev: d, capacity: capacity}
}

// Access implements storage.Device.
func (s *Storage) Access(now sim.Time, _ storage.Op, _ int64, size int64) sim.Time {
	n := int((size + s.dev.BlockBytes - 1) / s.dev.BlockBytes)
	return s.dev.Submit(now, n)
}

// Capacity implements storage.Device.
func (s *Storage) Capacity() int64 { return s.capacity }

// Name implements storage.Device.
func (s *Storage) Name() string {
	return fmt.Sprintf("pdam(P=%d,B=%d)", s.dev.P, s.dev.BlockBytes)
}

// ParallelismHint reports the device's IOs-per-step P — the natural batch
// size for a Lemma 13-style scheduler (the server sizes its read batches
// from this).
func (s *Storage) ParallelismHint() int { return s.dev.P }

// Params exposes the exact model parameters (P, B, step). The observability
// layer's cost accountant reads them directly instead of fitting — this
// device IS the PDAM of Definition 1.
func (s *Storage) Params() (p int, blockBytes int64, step sim.Time) {
	return s.dev.P, s.dev.BlockBytes, s.dev.StepTime
}

// prune drops bookkeeping for steps that can never be used again.
func (d *Device) prune(current int64) {
	if current-d.pruneBelow < 4096 || len(d.usage) < 4096 {
		return
	}
	for s := range d.usage {
		if s < current {
			delete(d.usage, s)
		}
	}
	d.pruneBelow = current
}
