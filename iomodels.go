// Package iomodels is a from-scratch reproduction of "Small Refinements to
// the DAM Can Have Big Consequences for Data-Structure Design" (Bender et
// al., SPAA 2019): the affine and PDAM refinements of the disk-access
// machine model, the storage-device simulators that validate them, and the
// external-memory dictionaries (B-tree, Bε-tree, LSM-tree, van Emde Boas
// PDAM tree) whose design the models explain and improve.
//
// This root package is the public facade: it re-exports the pieces a
// downstream user composes, with convenience constructors wiring a tree to
// a simulated device on a virtual clock. The layering underneath:
//
//	sim        virtual-time discrete-event engine (clock + processes)
//	storage    device interface, byte store, IO counters, traces
//	hdd, ssd   mechanistic device simulators (Table 1/2 profiles)
//	pdamdev    the abstract PDAM device of Definition 1
//	engine     shared IO path: device + allocator + sharded buffer pool
//	           (the models' M), multi-client, and the Dictionary interface
//	core       the analytic models and cost formulas (the paper's math)
//	btree      classic B-tree (BerkeleyDB stand-in)
//	betree     Bε-tree with the Theorem 9 node organization (TokuDB stand-in)
//	lsm        leveled LSM-tree (LevelDB stand-in)
//	veb        §8's van Emde Boas PDAM search tree
//	experiments one harness per table/figure of the paper
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results; the cmd/ tools regenerate every table and
// figure.
package iomodels

import (
	"iomodels/internal/betree"
	"iomodels/internal/btree"
	"iomodels/internal/cobtree"
	"iomodels/internal/core"
	"iomodels/internal/engine"
	"iomodels/internal/hdd"
	"iomodels/internal/lsm"
	"iomodels/internal/sim"
	"iomodels/internal/ssd"
	"iomodels/internal/storage"
)

// Re-exported model types (see internal/core for the full API).
type (
	// Affine is the affine model of §2.3: an IO of x bytes costs
	// Setup + PerByte·x seconds.
	Affine = core.Affine
	// DAM is the classic disk-access machine model.
	DAM = core.DAM
	// PDAM is the parallel DAM of §2.2.
	PDAM = core.PDAM
	// BTreeParams parameterizes the §5 B-tree analyses.
	BTreeParams = core.BTreeParams
	// BeTreeParams parameterizes the §6 Bε-tree analyses.
	BeTreeParams = core.BeTreeParams
)

// Re-exported simulator types.
type (
	// Clock is a virtual-time discrete-event engine.
	Clock = sim.Engine
	// VirtualTime is a virtual timestamp/duration in nanoseconds.
	VirtualTime = sim.Time
	// Disk couples a timing device with a byte store on a virtual clock.
	Disk = storage.Disk
	// HDDProfile describes a simulated hard drive.
	HDDProfile = hdd.Profile
	// SSDProfile describes a simulated solid-state drive.
	SSDProfile = ssd.Profile
)

// Re-exported engine types: the shared IO path every dictionary runs on.
type (
	// Engine bundles a device, its byte store, an extent allocator, and a
	// sharded buffer pool; many trees and many concurrent clients may
	// share one.
	Engine = engine.Engine
	// EngineConfig sizes an Engine (cache budget, pager shards).
	EngineConfig = engine.Config
	// Client is one simulated actor's handle onto an Engine: it issues
	// IOs in its own virtual timeline and keeps its own IO counters.
	Client = engine.Client
	// Dictionary is the common interface all four tree structures
	// implement (Get/Put/Delete/Scan/Stats).
	Dictionary = engine.Dictionary
	// DictionaryStats is a Dictionary's uniform self-report.
	DictionaryStats = engine.Stats
	// PagerStats reports buffer-pool hits, misses, evictions, and
	// write-backs.
	PagerStats = engine.PagerStats
)

// Re-exported durability and fault-injection types: the WAL-backed engine
// write path, journaled checkpoints, crash recovery, and the fault store
// that drills them (see internal/engine and internal/storage).
type (
	// DurabilityConfig sizes the WAL, the checkpoint journal regions, and
	// the auto-checkpoint cadence; zero values pick defaults.
	DurabilityConfig = engine.DurabilityConfig
	// Durable is the write-ahead-logging wrapper around a Dictionary:
	// every mutation is logged before it is applied.
	Durable = engine.Durable
	// DurabilityStats decomposes the durability write traffic (log bytes,
	// journal bytes, in-place installs) the paper's §3 alludes to.
	DurabilityStats = engine.DurabilityStats
	// Recovery is the reopen-after-crash handle: reattach dictionaries by
	// name, then Replay the WAL's committed suffix.
	Recovery = engine.Recovery
	// Device models the timing behaviour of a storage device.
	Device = storage.Device
	// ByteStore couples a timing device with stored bytes.
	ByteStore = storage.ByteStore
	// FaultStore wraps a ByteStore with crash, torn-write, and read-fault
	// injection.
	FaultStore = storage.FaultStore
	// CrashError is the panic value a fired crash fault unwinds with.
	CrashError = storage.CrashError
)

// Re-exported dictionary types.
type (
	// BTree is a disk-backed B-tree with a configurable node size.
	BTree = btree.Tree
	// BTreeConfig shapes a BTree.
	BTreeConfig = btree.Config
	// BeTree is a disk-backed Bε-tree.
	BeTree = betree.Tree
	// BeTreeConfig shapes a BeTree.
	BeTreeConfig = betree.Config
	// LSMTree is a leveled log-structured merge tree.
	LSMTree = lsm.Tree
	// LSMConfig shapes an LSMTree.
	LSMConfig = lsm.Config
	// COBTree is a dynamic cache-oblivious B-tree (packed-memory array with
	// a van Emde Boas index), the §8 direction made dynamic.
	COBTree = cobtree.Tree
	// COBTreeConfig shapes a COBTree.
	COBTreeConfig = cobtree.Config
)

// NewClock returns a fresh virtual clock at time zero.
func NewClock() *Clock { return sim.New() }

// HDDProfiles returns the five Table 2 hard-drive profiles.
func HDDProfiles() []HDDProfile { return hdd.Profiles() }

// SSDProfiles returns the four Table 1 SSD profiles.
func SSDProfiles() []SSDProfile { return ssd.Profiles() }

// NewHDD creates a simulated hard drive with backing storage on clk. The
// seed drives the rotational-latency stream.
func NewHDD(prof HDDProfile, seed uint64, clk *Clock) *Disk {
	return storage.NewDisk(hdd.New(prof, seed), clk)
}

// NewHDDDeterministic creates a hard-drive timing device whose rotational
// latency is pinned at its mean, for exactly reproducible runs (crash
// drills, property tests). Pair it with NewFaultStore + NewEngineOnStore.
func NewHDDDeterministic(prof HDDProfile) Device { return hdd.NewDeterministic(prof) }

// NewSSD creates a simulated SSD with backing storage on clk.
func NewSSD(prof SSDProfile, clk *Clock) *Disk {
	return storage.NewDisk(ssd.New(prof), clk)
}

// NewEngine creates a storage engine sharing disk's device, byte store,
// and clock. All trees living on one engine share its cache budget,
// allocator, and IO counters.
func NewEngine(cfg EngineConfig, disk *Disk) *Engine { return engine.FromDisk(cfg, disk) }

// NewFaultStore wraps dev with an in-memory byte store plus crash,
// torn-write, and read-fault injection. Build an engine on it with
// NewEngineOnStore; after a crash, ClearFaults reboots the medium and
// RecoverEngine reopens the surviving image.
func NewFaultStore(dev Device) *FaultStore { return storage.NewFaultStore(dev) }

// NewEngineOnStore creates an engine directly on a ByteStore (e.g. a
// FaultStore) with a clock. Call Engine.EnableDurability before creating
// trees to turn on the WAL-backed write path.
func NewEngineOnStore(cfg EngineConfig, store ByteStore, clk *Clock) *Engine {
	return engine.FromStore(cfg, store, clk)
}

// RecoverEngine reopens a durable engine's device image after a crash: it
// locates the newest sealed checkpoint, reinstalls its pages and allocator,
// and scans the WAL's committed suffix. Reattach each dictionary (reopened
// from Recovery.Manifest via OpenBTree/OpenBeTree/OpenLSMTree) in its
// original registration order, then call Recovery.Replay.
func RecoverEngine(cfg EngineConfig, dcfg DurabilityConfig, store ByteStore, clk *Clock) (*Engine, *Recovery, error) {
	return engine.Recover(cfg, dcfg, store, clk)
}

// NewBTree creates a B-tree on the given engine.
func NewBTree(cfg BTreeConfig, eng *Engine) (*BTree, error) { return btree.New(cfg, eng) }

// OpenBTree reopens a checkpointed B-tree from its recovery manifest.
func OpenBTree(cfg BTreeConfig, eng *Engine, manifest []byte) (*BTree, error) {
	return btree.Open(cfg, eng, manifest)
}

// OpenBeTree reopens a checkpointed Bε-tree from its recovery manifest.
func OpenBeTree(cfg BeTreeConfig, eng *Engine, manifest []byte) (*BeTree, error) {
	return betree.Open(cfg, eng, manifest)
}

// OpenLSMTree reopens a checkpointed LSM-tree from its recovery manifest.
func OpenLSMTree(cfg LSMConfig, eng *Engine, manifest []byte) (*LSMTree, error) {
	return lsm.Open(cfg, eng, manifest)
}

// NewBeTree creates a Bε-tree on the given engine. Use
// BeTreeConfig.Optimized() for the Theorem 9 node organization.
func NewBeTree(cfg BeTreeConfig, eng *Engine) (*BeTree, error) { return betree.New(cfg, eng) }

// NewLSMTree creates an LSM-tree on the given engine.
func NewLSMTree(cfg LSMConfig, eng *Engine) (*LSMTree, error) { return lsm.New(cfg, eng) }

// NewCOBTree creates a cache-oblivious B-tree metered against the engine's
// device. Unlike the other trees it needs no node-size tuning: its IO
// efficiency holds for every block size simultaneously (the engine's
// CacheBytes plays the model's M).
func NewCOBTree(cfg COBTreeConfig, eng *Engine) (*COBTree, error) {
	return cobtree.New(cfg, eng)
}

// AffineOf returns the affine model a simulated hard drive realizes for
// random IO: setup = expected seek + rotation + overhead, per-byte = inverse
// bandwidth. Use it to tune node sizes analytically (Corollaries 6/7/11/12)
// before validating empirically.
func AffineOf(prof HDDProfile) Affine {
	return Affine{Setup: prof.ExpectedSetup().Seconds(), PerByte: 1 / prof.Bandwidth}
}

// OptimalBTreeNodeBytes returns Corollary 7's optimal B-tree node size for
// point operations on the given drive.
func OptimalBTreeNodeBytes(prof HDDProfile, entryBytes int) int {
	return int(core.OptimalBTreeNodeBytes(AffineOf(prof), float64(entryBytes)))
}

// OptimalBeTreeParams returns Corollary 12's Bε-tree fanout and node size
// for the given drive: queries optimal to low-order terms, inserts
// Θ(log(1/α)) faster than any B-tree's point operations.
func OptimalBeTreeParams(prof HDDProfile, entryBytes, pivotBytes int) (fanout int, nodeBytes int) {
	f, b := core.OptimalBeTreeParams(AffineOf(prof), float64(entryBytes), float64(pivotBytes))
	return int(f), int(b)
}
